"""Tests for the median checker (§6.3, Algorithm 2, Theorem 10)."""

import numpy as np
import pytest

from repro.comm.context import Context
from repro.core.median_checker import (
    MedianCertificate,
    check_median_aggregation,
    signed_contributions,
)
from repro.core.params import SumCheckConfig

STRONG = SumCheckConfig.parse("8x16 m15")


def _arrays(*xs):
    return [np.asarray(x) for x in xs]


class TestSignedContributions:
    def test_balance_for_odd_unique(self):
        keys = np.array([1] * 5, dtype=np.uint64)
        values = np.array([10, 20, 30, 40, 50], dtype=np.int64)
        _, contrib, ok = signed_contributions(
            keys, values, np.zeros(5), [1], [30], [1], None
        )
        assert ok
        assert contrib.sum() == 0
        assert sorted(contrib.tolist()) == [-1, -1, 0, 1, 1]

    def test_balance_for_even_unique(self):
        keys = np.array([1] * 4, dtype=np.uint64)
        values = np.array([1, 2, 4, 5], dtype=np.int64)
        # median = 3 = 6/2 (den 2 keeps it exact)
        _, contrib, ok = signed_contributions(
            keys, values, np.zeros(4), [1], [6], [2], None
        )
        assert ok and contrib.sum() == 0

    def test_missing_key_flags_structural_failure(self):
        keys = np.array([1, 2], dtype=np.uint64)
        values = np.array([5, 5], dtype=np.int64)
        _, _, ok = signed_contributions(
            keys, values, np.zeros(2), [1], [5], [1], None
        )
        assert not ok

    def test_invalid_denominator_rejected(self):
        with pytest.raises(ValueError):
            signed_contributions(
                np.array([1], dtype=np.uint64),
                np.array([5], dtype=np.int64),
                np.zeros(1),
                [1],
                [5],
                [3],
                None,
            )


class TestUniqueValues:
    def test_accepts_correct_odd(self):
        keys = np.array([1, 1, 1, 2, 2, 2, 2], dtype=np.uint64)
        values = np.array([10, 20, 30, 1, 2, 3, 4], dtype=np.int64)
        assert check_median_aggregation(
            keys, values, [1, 2], [20, 5], [1, 2], config=STRONG, seed=1
        ).accepted

    def test_rejects_wrong_median(self):
        keys = np.array([1, 1, 1], dtype=np.uint64)
        values = np.array([10, 20, 30], dtype=np.int64)
        for wrong in (10, 15, 25, 30):
            den = 1
            assert not check_median_aggregation(
                keys, values, [1], [wrong], [den], config=STRONG, seed=1
            ).accepted

    def test_rejects_half_integer_when_true_is_integer(self):
        keys = np.array([1, 1, 1], dtype=np.uint64)
        values = np.array([10, 20, 30], dtype=np.int64)
        assert not check_median_aggregation(
            keys, values, [1], [41], [2], config=STRONG, seed=1
        ).accepted

    def test_rejects_missing_input_key(self):
        keys = np.array([1, 2], dtype=np.uint64)
        values = np.array([5, 7], dtype=np.int64)
        assert not check_median_aggregation(
            keys, values, [1], [5], [1], config=STRONG, seed=1
        ).accepted


class TestTieBreaking:
    def test_all_equal_values_with_certificate(self):
        keys = np.array([1, 1, 1], dtype=np.uint64)
        values = np.array([5, 5, 5], dtype=np.int64)
        uids = np.array([10, 11, 12], dtype=np.int64)
        cert = MedianCertificate(np.array([11]), np.array([11]))
        assert check_median_aggregation(
            keys, values, [1], [5], [1],
            certificate=cert, input_uids=uids, config=STRONG, seed=1,
        ).accepted

    def test_wrong_designated_middle_rejected(self):
        keys = np.array([1, 1, 1], dtype=np.uint64)
        values = np.array([5, 5, 5], dtype=np.int64)
        uids = np.array([10, 11, 12], dtype=np.int64)
        for wrong_uid in (10, 12):
            cert = MedianCertificate(np.array([wrong_uid]), np.array([wrong_uid]))
            assert not check_median_aggregation(
                keys, values, [1], [5], [1],
                certificate=cert, input_uids=uids, config=STRONG, seed=1,
            ).accepted

    def test_fabricated_uid_rejected(self):
        """A certificate naming a uid that does not exist cannot pass."""
        keys = np.array([1, 1, 1], dtype=np.uint64)
        values = np.array([5, 5, 5], dtype=np.int64)
        uids = np.array([10, 11, 12], dtype=np.int64)
        cert = MedianCertificate(np.array([99]), np.array([99]))
        assert not check_median_aggregation(
            keys, values, [1], [5], [1],
            certificate=cert, input_uids=uids, config=STRONG, seed=1,
        ).accepted

    def test_even_count_with_ties(self):
        keys = np.array([1, 1, 1, 1], dtype=np.uint64)
        values = np.array([5, 5, 9, 9], dtype=np.int64)
        uids = np.array([0, 1, 2, 3], dtype=np.int64)
        # middles: second 5 (uid 1) and first 9 (uid 2) -> median 7.
        cert = MedianCertificate(np.array([1]), np.array([2]))
        assert check_median_aggregation(
            keys, values, [1], [7], [1],
            certificate=cert, input_uids=uids, config=STRONG, seed=1,
        ).accepted
        assert not check_median_aggregation(
            keys, values, [1], [5], [1],
            certificate=MedianCertificate(np.array([0]), np.array([1])),
            input_uids=uids, config=STRONG, seed=1,
        ).accepted


class TestAgainstNumpy:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_numpy_median_unique(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.permutation(100)[: 11 + seed].astype(np.int64)
        keys = np.full(values.size, 3, dtype=np.uint64)
        med = float(np.median(values))
        num = int(round(med * 2))
        if num % 2 == 0:
            num, den = num // 2, 1
        else:
            den = 2
        assert check_median_aggregation(
            keys, values, [3], [num], [den], config=STRONG, seed=seed
        ).accepted


class TestDistributed:
    @pytest.mark.parametrize("p", [2, 4])
    def test_round_trip_with_dataflow(self, p):
        from repro.dataflow.ops.aggregates import median_by_key
        from repro.workloads.kv import sum_workload

        keys, values = sum_workload(900, num_keys=30, seed=9)
        ctx = Context(p)

        def run(comm, k, v):
            res = median_by_key(comm, k, v)
            offset = comm.exscan(int(k.size), op=lambda a, b: a + b, identity=0)
            uids = offset + np.arange(k.size, dtype=np.int64)
            return check_median_aggregation(
                k, v, res.keys, res.numerators, res.denominators,
                certificate=res.certificate, input_uids=uids,
                config=STRONG, seed=2, comm=comm,
            ).accepted

        verdicts = ctx.run(
            run, per_rank_args=list(zip(ctx.split(keys), ctx.split(values)))
        )
        assert verdicts == [True] * p

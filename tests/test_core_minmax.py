"""Tests for the deterministic min/max checker (§6.2, Theorem 9)."""

import numpy as np
import pytest

from repro.comm.context import Context
from repro.core.minmax_checker import check_max_aggregation, check_min_aggregation


def _kv():
    keys = np.array([1, 1, 2, 2, 3, 3, 3], dtype=np.uint64)
    values = np.array([5, 3, 8, 2, 7, 9, 7], dtype=np.int64)
    return keys, values


class TestMinSequential:
    def test_accepts_correct(self):
        keys, values = _kv()
        result = check_min_aggregation(
            (keys, values),
            np.array([1, 2, 3], dtype=np.uint64),
            np.array([3, 2, 7], dtype=np.int64),
            np.zeros(3, dtype=np.int64),
        )
        assert result.accepted
        assert result.details["deterministic"]

    def test_rejects_min_too_small(self):
        """Asserted min below every element: property (b) fails."""
        keys, values = _kv()
        assert not check_min_aggregation(
            (keys, values),
            np.array([1, 2, 3], dtype=np.uint64),
            np.array([1, 2, 7], dtype=np.int64),
            np.zeros(3, dtype=np.int64),
        ).accepted

    def test_rejects_min_too_large(self):
        """Asserted min above a real element: property (a) fails."""
        keys, values = _kv()
        assert not check_min_aggregation(
            (keys, values),
            np.array([1, 2, 3], dtype=np.uint64),
            np.array([5, 2, 7], dtype=np.int64),
            np.zeros(3, dtype=np.int64),
        ).accepted

    def test_rejects_forgotten_key(self):
        keys, values = _kv()
        assert not check_min_aggregation(
            (keys, values),
            np.array([1, 2], dtype=np.uint64),
            np.array([3, 2], dtype=np.int64),
            np.zeros(2, dtype=np.int64),
        ).accepted

    def test_rejects_invented_key(self):
        keys, values = _kv()
        assert not check_min_aggregation(
            (keys, values),
            np.array([1, 2, 3, 4], dtype=np.uint64),
            np.array([3, 2, 7, 1], dtype=np.int64),
            np.zeros(4, dtype=np.int64),
        ).accepted

    def test_rejects_owner_out_of_range(self):
        keys, values = _kv()
        assert not check_min_aggregation(
            (keys, values),
            np.array([1, 2, 3], dtype=np.uint64),
            np.array([3, 2, 7], dtype=np.int64),
            np.array([0, 0, 5], dtype=np.int64),  # PE 5 does not exist (p=1)
        ).accepted

    def test_rejects_duplicate_result_keys(self):
        keys, values = _kv()
        assert not check_min_aggregation(
            (keys, values),
            np.array([1, 1, 2, 3], dtype=np.uint64),
            np.array([3, 3, 2, 7], dtype=np.int64),
            np.zeros(4, dtype=np.int64),
        ).accepted

    def test_empty_input_empty_result(self):
        empty_k = np.zeros(0, dtype=np.uint64)
        empty_v = np.zeros(0, dtype=np.int64)
        assert check_min_aggregation(
            (empty_k, empty_v), empty_k, empty_v, empty_v
        ).accepted

    def test_never_accepts_any_wrong_value_exhaustive(self):
        """Determinism: every possible wrong min is rejected (no δ)."""
        keys = np.array([7, 7, 7], dtype=np.uint64)
        values = np.array([4, 6, 9], dtype=np.int64)
        for claimed in range(0, 12):
            result = check_min_aggregation(
                (keys, values),
                np.array([7], dtype=np.uint64),
                np.array([claimed], dtype=np.int64),
                np.zeros(1, dtype=np.int64),
            )
            assert result.accepted == (claimed == 4)


class TestMax:
    def test_accepts_correct(self):
        keys, values = _kv()
        assert check_max_aggregation(
            (keys, values),
            np.array([1, 2, 3], dtype=np.uint64),
            np.array([5, 8, 9], dtype=np.int64),
            np.zeros(3, dtype=np.int64),
        ).accepted

    def test_rejects_wrong(self):
        keys, values = _kv()
        assert not check_max_aggregation(
            (keys, values),
            np.array([1, 2, 3], dtype=np.uint64),
            np.array([5, 8, 8], dtype=np.int64),
            np.zeros(3, dtype=np.int64),
        ).accepted


class TestMinDistributed:
    @pytest.mark.parametrize("p", [2, 4])
    def test_distributed_accept_and_ownership(self, p):
        from repro.dataflow.ops.aggregates import min_by_key
        from repro.workloads.kv import sum_workload

        keys, values = sum_workload(1_000, num_keys=40, seed=5)
        ctx = Context(p)

        def run(comm, k, v):
            res = min_by_key(comm, k, v)
            return check_min_aggregation(
                (k, v), res.keys, res.values, res.owners, comm=comm, seed=1
            ).accepted

        verdicts = ctx.run(
            run, per_rank_args=list(zip(ctx.split(keys), ctx.split(values)))
        )
        assert verdicts == [True] * p

    def test_distributed_detects_wrong_owner(self):
        """Certificate pointing at a PE that lacks the minimum: reject."""
        ctx = Context(2)
        # PE0 holds (1, 5); PE1 holds (1, 3).  True min 3 is at PE1.
        chunks = [
            (np.array([1], dtype=np.uint64), np.array([5], dtype=np.int64)),
            (np.array([1], dtype=np.uint64), np.array([3], dtype=np.int64)),
        ]

        def run(comm, k, v):
            return check_min_aggregation(
                (k, v),
                np.array([1], dtype=np.uint64),
                np.array([3], dtype=np.int64),
                np.array([0], dtype=np.int64),  # wrong owner: PE0
                comm=comm,
                seed=1,
            ).accepted

        verdicts = ctx.run(run, per_rank_args=chunks)
        assert verdicts == [False] * 2

    def test_distributed_detects_inconsistent_replicas(self):
        """Result integrity (§2): PEs holding different copies must reject."""
        ctx = Context(2)
        chunks = [
            (np.array([1], dtype=np.uint64), np.array([3], dtype=np.int64)),
            (np.array([1], dtype=np.uint64), np.array([3], dtype=np.int64)),
        ]

        def run(comm, k, v):
            claimed = 3 if comm.rank == 0 else 2  # divergent replicas
            return check_min_aggregation(
                (k, v),
                np.array([1], dtype=np.uint64),
                np.array([claimed], dtype=np.int64),
                np.array([0], dtype=np.int64),
                comm=comm,
                seed=1,
            ).accepted

        verdicts = ctx.run(run, per_rank_args=chunks)
        assert verdicts == [False] * 2

"""Tests for the multi-seed batched checkers (core/multiseed.py).

The load-bearing property: every per-seed table, verdict and fingerprint is
bit-identical to the corresponding single-seed checker instance, across
hash families and reduce operators.
"""

import numpy as np
import pytest

from repro.comm.context import Context
from repro.core.multiseed import MultiSeedHashSumChecker, MultiSeedSumChecker
from repro.core.params import SumCheckConfig
from repro.core.permutation_checker import (
    HashSumPermutationChecker,
    wide_weighted_sum,
)
from repro.core.sum_checker import SumAggregationChecker
from repro.workloads.kv import aggregate_reference, sum_workload

SEEDS = np.arange(6, dtype=np.uint64) * np.uint64(1337) + np.uint64(5)


@pytest.fixture(scope="module")
def workload():
    keys, values = sum_workload(4_000, num_keys=300, seed=17)
    out_k, out_v = aggregate_reference(keys, values)
    bad_v = out_v.copy()
    bad_v[3] += 1
    return keys, values, out_k, out_v, bad_v


class TestPerSeedIdentity:
    """Multi-seed output must equal T independent single-seed checkers."""

    @pytest.mark.parametrize("family", ["Mix", "CRC", "Tab", "Tab64", "MShift"])
    @pytest.mark.parametrize("operator", ["+", "xor"])
    def test_tables_match_instances(self, family, operator, workload):
        keys, values = workload[:2]
        cfg = SumCheckConfig.parse("4x8 m5").with_hash(family)
        multi = MultiSeedSumChecker(cfg, SEEDS, operator=operator)
        tables = multi.local_tables(keys, values)
        assert tables.shape == (SEEDS.size, cfg.iterations, cfg.d)
        for t, seed in enumerate(SEEDS):
            ref = SumAggregationChecker(cfg, int(seed), operator=operator)
            assert np.array_equal(tables[t], ref.local_tables(keys, values))

    @pytest.mark.parametrize("label", ["3x37 m7", "1x2 m31", "8x16 m15"])
    def test_tables_match_across_configs(self, label, workload):
        keys, values = workload[:2]
        cfg = SumCheckConfig.parse(label)
        tables = MultiSeedSumChecker(cfg, SEEDS).local_tables(keys, values)
        for t, seed in enumerate(SEEDS):
            ref = SumAggregationChecker(cfg, int(seed))
            assert np.array_equal(tables[t], ref.local_tables(keys, values))

    @pytest.mark.parametrize("operator", ["+", "xor"])
    def test_verdicts_match_instances(self, operator, workload):
        keys, values, out_k, out_v, bad_v = workload
        cfg = SumCheckConfig.parse("1x2 m4")  # weak → per-seed verdicts vary
        seeds = np.arange(30, dtype=np.uint64)
        multi = MultiSeedSumChecker(cfg, seeds, operator=operator)
        result = multi.check_local((keys, values), (out_k, bad_v))
        expected = [
            SumAggregationChecker(cfg, int(s), operator=operator)
            .check_local((keys, values), (out_k, bad_v))
            .accepted
            for s in seeds
        ]
        assert result.details["per_seed_accepted"] == expected
        assert result.accepted == all(expected)

    def test_accepts_correct_result_everywhere(self, workload):
        keys, values, out_k, out_v = workload[:4]
        cfg = SumCheckConfig.parse("4x8 m5")
        result = MultiSeedSumChecker(cfg, SEEDS).check_local(
            (keys, values), (out_k, out_v)
        )
        assert result.accepted
        assert result.details["per_seed_accepted"] == [True] * SEEDS.size

    def test_detects_delta_matches_instances(self):
        cfg = SumCheckConfig.parse("1x2 m4")
        seeds = np.arange(40, dtype=np.uint64)
        dk = np.array([123, 456], dtype=np.uint64)
        dv = np.array([5, -5], dtype=np.int64)
        flags = MultiSeedSumChecker(cfg, seeds).detects_delta(dk, dv)
        expected = np.array(
            [
                SumAggregationChecker(cfg, int(s)).detects_delta(dk, dv)
                for s in seeds
            ]
        )
        assert np.array_equal(flags, expected)
        assert flags.any() and not flags.all()  # weak config: both occur

    def test_single_seed_degenerates_to_instance(self, workload):
        keys, values = workload[:2]
        cfg = SumCheckConfig.parse("4x8 m5")
        tables = MultiSeedSumChecker(cfg, [9]).local_tables(keys, values)
        ref = SumAggregationChecker(cfg, 9).local_tables(keys, values)
        assert np.array_equal(tables[0], ref)

    def test_seed_chunking_is_invisible(self, workload):
        """Block boundaries in the batched hash pass must not matter."""
        keys, values = workload[:2]
        cfg = SumCheckConfig.parse("4x8 m5")
        whole = MultiSeedSumChecker(cfg, SEEDS).local_tables(keys, values)
        tiny = MultiSeedSumChecker(
            cfg, SEEDS, chunk_elements=1
        ).local_tables(keys, values)
        assert np.array_equal(whole, tiny)


class TestMagnitudePaths:
    """All accumulation paths (float-fast, agg-mod, per-element) are exact."""

    CFG = SumCheckConfig.parse("4x8 m15")

    def _assert_matches_instances(self, keys, values):
        tables = MultiSeedSumChecker(self.CFG, SEEDS).local_tables(keys, values)
        for t, seed in enumerate(SEEDS):
            ref = SumAggregationChecker(self.CFG, int(seed))
            assert np.array_equal(tables[t], ref.local_tables(keys, values))

    def test_int64_min_values(self):
        keys = np.array([1, 2, 1, 3], dtype=np.uint64)
        values = np.array([-(2**63), 3, 5, -(2**63)], dtype=np.int64)
        self._assert_matches_instances(keys, values)

    def test_overflowing_aggregate_falls_back_per_element(self):
        # Σ|v| ≥ 2^63: per-key aggregation is skipped, lanes stay exact.
        keys = np.array([1, 2, 1, 3], dtype=np.uint64)
        values = np.array([2**62, 2**62, -(2**63), 7], dtype=np.int64)
        self._assert_matches_instances(keys, values)

    def test_mid_range_uses_int64_aggregation(self):
        # 2^52 ≤ bound < 2^63: the agg-mod path (int64 scatter, chunked mod).
        keys = np.array([1, 2, 1, 3, 2], dtype=np.uint64)
        values = np.array([2**50, -(2**41), 5, 5, 2**50], dtype=np.int64)
        self._assert_matches_instances(keys, values)

    def test_empty_input(self):
        empty_k = np.zeros(0, dtype=np.uint64)
        empty_v = np.zeros(0, dtype=np.int64)
        tables = MultiSeedSumChecker(self.CFG, SEEDS).local_tables(
            empty_k, empty_v
        )
        assert not tables.any()


class TestWireFormat:
    @pytest.mark.parametrize("label", ["4x8 m5", "3x37 m7", "8x16 m15"])
    def test_pack_unpack_round_trip(self, label):
        cfg = SumCheckConfig.parse(label)
        multi = MultiSeedSumChecker(cfg, SEEDS)
        rng = np.random.default_rng(3)
        tables = np.stack(
            [
                np.stack(
                    [
                        rng.integers(0, int(m), cfg.d, dtype=np.int64)
                        for m in multi.moduli[t]
                    ]
                )
                for t in range(SEEDS.size)
            ]
        )
        assert np.array_equal(multi.unpack(multi.pack(tables)), tables)

    def test_packed_size_covers_all_seeds(self):
        cfg = SumCheckConfig.parse("8x16 m15")
        multi = MultiSeedSumChecker(cfg, SEEDS)
        payload = multi.pack(
            np.zeros((SEEDS.size, cfg.iterations, cfg.d), dtype=np.int64)
        )
        assert multi.table_bits == SEEDS.size * cfg.table_bits
        assert len(payload) == (multi.table_bits + 7) // 8

    def test_xor_wire_round_trip(self):
        cfg = SumCheckConfig.parse("4x8 m5")
        multi = MultiSeedSumChecker(cfg, SEEDS, operator="xor")
        rng = np.random.default_rng(4)
        tables = (
            rng.integers(
                -(2**63), 2**63, (SEEDS.size, cfg.iterations, cfg.d),
                dtype=np.int64,
            )
        )
        assert np.array_equal(multi.unpack(multi.pack(tables)), tables)


class TestDistributed:
    @pytest.mark.parametrize("p", [2, 4])
    def test_matches_sequential_per_seed(self, p, workload):
        keys, values, out_k, out_v, bad_v = workload
        cfg = SumCheckConfig.parse("1x4 m4")  # weak → mixed per-seed verdicts
        seeds = np.arange(20, dtype=np.uint64)
        sequential = MultiSeedSumChecker(cfg, seeds).check_local(
            (keys, values), (out_k, bad_v)
        )
        ctx = Context(p)

        def run(comm, k, v, ok, ov):
            return MultiSeedSumChecker(cfg, seeds).check_distributed(
                comm, (k, v), (ok, ov)
            )

        results = ctx.run(
            run,
            per_rank_args=list(
                zip(
                    ctx.split(keys),
                    ctx.split(values),
                    ctx.split(out_k),
                    ctx.split(bad_v),
                )
            ),
        )
        for result in results:
            assert (
                result.details["per_seed_accepted"]
                == sequential.details["per_seed_accepted"]
            )
            assert result.accepted == sequential.accepted

    def test_single_collective_per_check(self, workload):
        """All T seeds settle in one reduce + one bcast (no per-seed trips)."""
        keys, values, out_k, out_v = workload[:4]
        cfg = SumCheckConfig.parse("4x8 m5")
        seeds = np.arange(16, dtype=np.uint64)
        ctx = Context(4)

        def run(comm, k, v, ok, ov):
            return MultiSeedSumChecker(cfg, seeds).check_distributed(
                comm, (k, v), (ok, ov)
            ).accepted

        verdicts = ctx.run(
            run,
            per_rank_args=list(
                zip(
                    ctx.split(keys),
                    ctx.split(values),
                    ctx.split(out_k),
                    ctx.split(out_v),
                )
            ),
        )
        assert verdicts == [True] * 4
        # A binomial-tree reduce plus broadcast over p PEs costs 2(p−1)
        # messages for the whole 16-seed check.
        assert ctx.traffic_summary()["total_messages"] == 2 * (4 - 1)


class TestMultiSeedPermutation:
    @pytest.mark.parametrize("family", ["Mix", "CRC", "Tab"])
    def test_fingerprints_match_instances(self, family, rng):
        elements = rng.integers(0, 500, 2_000).astype(np.uint64)  # duplicates
        multi = MultiSeedHashSumChecker(
            SEEDS, iterations=2, hash_family=family, log_h=8
        )
        fps = multi.fingerprints(elements)
        for t, seed in enumerate(SEEDS):
            ref = HashSumPermutationChecker(2, family, 8, int(seed))
            assert fps[t] == ref.fingerprint(elements)

    def test_verdicts_match_instances(self, rng):
        elements = rng.integers(0, 10**6, 3_000).astype(np.uint64)
        output = np.sort(elements)
        bad = output.copy()
        bad[5] += 1
        multi = MultiSeedHashSumChecker(SEEDS, iterations=1, log_h=2)
        result = multi.check(elements, bad)
        expected = [
            HashSumPermutationChecker(1, "Mix", 2, int(s))
            .check(elements, bad)
            .accepted
            for s in SEEDS
        ]
        assert result.details["per_seed_accepted"] == expected
        assert multi.check(elements, output).accepted

    def test_multi_sequence_sides(self, rng):
        elements = rng.integers(0, 1000, 1_500).astype(np.uint64)
        multi = MultiSeedHashSumChecker(SEEDS, iterations=2, log_h=16)
        split = [elements[:400], elements[400:]]
        assert multi.fingerprints(split) == multi.fingerprints(elements)

    def test_chunking_is_invisible(self, rng):
        elements = rng.integers(0, 300, 1_000).astype(np.uint64)
        a = MultiSeedHashSumChecker(SEEDS, log_h=16)
        b = MultiSeedHashSumChecker(SEEDS, log_h=16, chunk_elements=1)
        assert a.fingerprints(elements) == b.fingerprints(elements)

    @pytest.mark.parametrize("p", [2, 4])
    def test_distributed_single_allreduce(self, p, rng):
        elements = np.arange(2_000, dtype=np.uint64)
        output = elements[::-1].copy()
        ctx = Context(p)

        def run(comm, e, o):
            return MultiSeedHashSumChecker(SEEDS, log_h=16).check(
                e, o, comm=comm
            ).accepted

        verdicts = ctx.run(
            run, per_rank_args=list(zip(ctx.split(elements), ctx.split(output)))
        )
        assert verdicts == [True] * p

    def test_log_h_validation(self):
        with pytest.raises(ValueError):
            MultiSeedHashSumChecker(SEEDS, hash_family="CRC", log_h=33)


class TestWideWeightedSum:
    def test_matches_python_reference(self, rng):
        values = rng.integers(0, 2**63, 200).astype(np.uint64) * np.uint64(2)
        weights = rng.integers(1, 2**20, 200).astype(np.uint64)
        expected = sum(int(v) * int(w) for v, w in zip(values, weights))
        assert wide_weighted_sum(values, weights) == expected

    def test_rejects_oversized_weights(self):
        with pytest.raises(ValueError):
            wide_weighted_sum(
                np.array([1], dtype=np.uint64),
                np.array([1 << 32], dtype=np.uint64),
            )

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            wide_weighted_sum(
                np.array([1, 2], dtype=np.uint64),
                np.array([1], dtype=np.uint64),
            )


class TestValidation:
    def test_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            MultiSeedSumChecker(SumCheckConfig.parse("4x8 m5"), SEEDS, "min")

    def test_rejects_empty_seed_array(self):
        with pytest.raises(ValueError):
            MultiSeedSumChecker(
                SumCheckConfig.parse("4x8 m5"), np.zeros(0, dtype=np.uint64)
            )

    def test_rejects_float_seeds(self):
        # Same policy as _coerce_keys: truncation could collapse
        # "independent" seeds (0.4 and 0.6 both become 0).
        with pytest.raises(TypeError):
            MultiSeedSumChecker(
                SumCheckConfig.parse("4x8 m5"), np.array([0.4, 0.6])
            )

    def test_rejects_bad_chunk_budget(self):
        with pytest.raises(ValueError):
            MultiSeedSumChecker(
                SumCheckConfig.parse("4x8 m5"), SEEDS, chunk_elements=0
            )

    def test_rejects_length_mismatch(self, workload):
        keys = workload[0]
        multi = MultiSeedSumChecker(SumCheckConfig.parse("4x8 m5"), SEEDS)
        with pytest.raises(ValueError):
            multi.local_tables(keys, np.zeros(3, dtype=np.int64))

    def test_rejects_duplicate_seeds(self):
        # Duplicates silently weaken δ^T to δ^(distinct): refuse them.
        with pytest.raises(ValueError, match="distinct"):
            MultiSeedSumChecker(
                SumCheckConfig.parse("4x8 m5"), np.array([3, 5, 3])
            )
        with pytest.raises(ValueError, match="distinct"):
            MultiSeedHashSumChecker(np.array([7, 7], dtype=np.uint64))

    def test_duplicate_detection_runs_after_sign_coercion(self):
        # -1 (int64) and 2^64-1 (uint64) are the same seed after coercion;
        # the signed form alone must still be accepted as distinct seeds.
        cfg = SumCheckConfig.parse("4x8 m5")
        with pytest.raises(ValueError, match="distinct"):
            MultiSeedSumChecker(cfg, np.array([-1, -1], dtype=np.int64))
        MultiSeedSumChecker(cfg, np.array([-1, 5], dtype=np.int64))  # ok

    def test_rejects_2d_seed_array(self):
        with pytest.raises(ValueError):
            MultiSeedSumChecker(
                SumCheckConfig.parse("4x8 m5"),
                np.arange(4, dtype=np.uint64).reshape(2, 2),
            )

    def test_perm_empty_key_arrays(self):
        multi = MultiSeedHashSumChecker(SEEDS, iterations=2, log_h=16)
        empty = np.zeros(0, dtype=np.uint64)
        assert multi.fingerprints(empty) == [[0, 0]] * SEEDS.size
        result = multi.check(empty, empty)
        assert result.accepted
        assert result.details["per_seed_accepted"] == [True] * SEEDS.size

    def test_sum_empty_vs_nonempty_rejects(self):
        multi = MultiSeedSumChecker(SumCheckConfig.parse("8x16 m15"), SEEDS)
        empty = (np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64))
        nonempty = (
            np.array([1], dtype=np.uint64),
            np.array([5], dtype=np.int64),
        )
        result = multi.check_local(nonempty, empty)
        assert not result.accepted
        assert result.details["per_seed_accepted"] == [False] * SEEDS.size

    def test_signed_seed_array_coerced(self, workload):
        keys, values = workload[:2]
        cfg = SumCheckConfig.parse("4x8 m5")
        a = MultiSeedSumChecker(cfg, np.array([-1, 5], dtype=np.int64))
        b = MultiSeedSumChecker(
            cfg, np.array([2**64 - 1, 5], dtype=np.uint64)
        )
        assert np.array_equal(
            a.local_tables(keys, values), b.local_tables(keys, values)
        )

"""Tests for the multi-seed derived checkers and the condensed-reuse API.

The load-bearing property mirrors ``test_core_multiseed.py``: every
derived multi-seed checker's per-seed verdict is identical to ``T``
independent single-seed checker calls, while touching the raw data once.
"""

import numpy as np
import pytest

from repro.comm.context import Context
from repro.core.average_checker import (
    check_average_aggregation,
    check_average_aggregation_multiseed,
)
from repro.core.groupby_checker import (
    check_groupby_redistribution,
    check_groupby_redistribution_multiseed,
    default_partitioner,
)
from repro.core.integrity import replicated_digest, replicated_digest_multiseed
from repro.core.median_checker import (
    check_median_aggregation,
    check_median_aggregation_multiseed,
)
from repro.core.minmax_checker import (
    check_max_aggregation,
    check_min_aggregation,
    check_min_aggregation_multiseed,
    check_max_aggregation_multiseed,
)
from repro.core.multiseed import (
    MultiSeedHashSumChecker,
    MultiSeedSumChecker,
    MultiSeedSumCheckerStream,
    check_count_aggregation_multiseed,
    check_sum_aggregation_multiseed,
    condense_kv,
    condense_side,
)
from repro.core.params import SumCheckConfig
from repro.core.sum_checker import (
    SumAggregationChecker,
    SumCheckerStream,
    check_count_aggregation,
)
from repro.workloads.kv import aggregate_reference, sum_workload

SEEDS = np.arange(12, dtype=np.uint64) * np.uint64(997) + np.uint64(3)
WEAK = SumCheckConfig.parse("1x2 m4")  # weak → per-seed verdicts vary
STRONG = SumCheckConfig.parse("8x16 m15")


class TestReplicatedDigestMultiseed:
    def test_matches_scalar_digests(self, rng):
        arrays = (
            rng.integers(0, 1000, 5_000).astype(np.uint64),
            rng.integers(-50, 50, 5_000).astype(np.int64),
            np.arange(7, dtype=np.int32).reshape(7, 1),
        )
        got = replicated_digest_multiseed(SEEDS, *arrays)
        assert got == [replicated_digest(int(s), *arrays) for s in SEEDS]

    def test_no_arrays(self):
        got = replicated_digest_multiseed(SEEDS)
        assert got == [replicated_digest(int(s)) for s in SEEDS]

    def test_distinguishes_content(self, rng):
        a = rng.integers(0, 2**63, 100).astype(np.uint64)
        b = a.copy()
        b[3] += 1
        assert replicated_digest_multiseed(SEEDS, a) != (
            replicated_digest_multiseed(SEEDS, b)
        )


class TestCondensedReuse:
    """check_*_condensed over a shared condensation == direct check."""

    def test_sum_checker_condensed_matches(self):
        keys, values = sum_workload(3_000, num_keys=150, seed=5)
        out_k, out_v = aggregate_reference(keys, values)
        bad_v = out_v.copy()
        bad_v[1] += 1
        multi = MultiSeedSumChecker(WEAK, SEEDS)
        cin = condense_kv(keys, values)
        cout = condense_kv(out_k, bad_v)
        direct = multi.check_local((keys, values), (out_k, bad_v))
        condensed = multi.check_local_condensed(cin, cout)
        assert (
            condensed.details["per_seed_accepted"]
            == direct.details["per_seed_accepted"]
        )
        # The same condensations serve a different seed set — no new pass.
        other = MultiSeedSumChecker(WEAK, SEEDS + np.uint64(1000))
        ref = other.check_local((keys, values), (out_k, bad_v))
        assert (
            other.check_local_condensed(cin, cout).details["per_seed_accepted"]
            == ref.details["per_seed_accepted"]
        )

    def test_operator_mismatch_rejected(self):
        keys, values = sum_workload(100, num_keys=10, seed=6)
        plus = condense_kv(keys, values, "+")
        xor = condense_kv(keys, values, "xor")
        with pytest.raises(ValueError):
            MultiSeedSumChecker(WEAK, SEEDS, "xor").local_tables_condensed(plus)
        with pytest.raises(ValueError):
            MultiSeedSumChecker(WEAK, SEEDS, "+").local_tables_condensed(xor)

    def test_distributed_condensed_matches(self):
        keys, values = sum_workload(2_000, num_keys=100, seed=7)
        out_k, out_v = aggregate_reference(keys, values)
        bad_v = out_v.copy()
        bad_v[0] += 3
        sequential = MultiSeedSumChecker(WEAK, SEEDS).check_local(
            (keys, values), (out_k, bad_v)
        )
        ctx = Context(2)

        def run(comm, k, v, ok, ov):
            multi = MultiSeedSumChecker(WEAK, SEEDS)
            return multi.check_distributed_condensed(
                comm, condense_kv(k, v), condense_kv(ok, ov)
            ).details["per_seed_accepted"]

        outs = ctx.run(
            run,
            per_rank_args=list(
                zip(
                    ctx.split(keys),
                    ctx.split(values),
                    ctx.split(out_k),
                    ctx.split(bad_v),
                )
            ),
        )
        assert outs == [sequential.details["per_seed_accepted"]] * 2

    def test_perm_condensed_matches(self, rng):
        elements = rng.integers(0, 400, 2_000).astype(np.uint64)
        bad = np.sort(elements).copy()
        bad[7] += 1
        multi = MultiSeedHashSumChecker(SEEDS, iterations=1, log_h=2)
        direct = multi.check(elements, bad)
        condensed = multi.check_condensed(
            condense_side(elements), condense_side(bad)
        )
        assert (
            condensed.details["per_seed_accepted"]
            == direct.details["per_seed_accepted"]
        )

    def test_condense_side_handles_multi_sequence(self, rng):
        a = rng.integers(0, 100, 500).astype(np.uint64)
        b = rng.integers(0, 100, 300).astype(np.uint64)
        multi = MultiSeedHashSumChecker(SEEDS, iterations=2, log_h=16)
        assert multi.fingerprints_condensed(
            condense_side([a, b])
        ) == multi.fingerprints([a, b])


class TestMultiSeedStream:
    def test_matches_single_seed_streams(self):
        keys, values = sum_workload(2_000, num_keys=100, seed=8)
        out_k, out_v = aggregate_reference(keys, values)
        bad_v = out_v.copy()
        bad_v[2] += 1
        multi = MultiSeedSumCheckerStream(MultiSeedSumChecker(WEAK, SEEDS))
        multi.feed_input(keys[:500], values[:500])
        multi.feed_output(out_k, bad_v)
        multi.feed_input(keys[500:], values[500:])
        got = multi.settle()
        expected = []
        for s in SEEDS:
            st = SumCheckerStream(SumAggregationChecker(WEAK, int(s)))
            st.feed_input(keys[:500], values[:500])
            st.feed_output(out_k, bad_v)
            st.feed_input(keys[500:], values[500:])
            expected.append(st.settle().accepted)
        assert got.details["per_seed_accepted"] == expected
        assert got.accepted == all(expected)
        assert got.details["streaming"] is True

    def test_settle_once(self):
        stream = MultiSeedSumCheckerStream(MultiSeedSumChecker(WEAK, SEEDS))
        stream.settle()
        with pytest.raises(RuntimeError):
            stream.settle()
        with pytest.raises(RuntimeError):
            stream.feed_input([1], [1])
        with pytest.raises(RuntimeError):
            stream.feed_output([1], [1])

    @pytest.mark.parametrize("p", [2, 4])
    def test_distributed_settle(self, p):
        keys, values = sum_workload(2_000, num_keys=100, seed=9)
        out_k, out_v = aggregate_reference(keys, values)
        ctx = Context(p)

        def run(comm, k, v, ok, ov):
            stream = MultiSeedSumCheckerStream(
                MultiSeedSumChecker(STRONG, SEEDS)
            )
            stream.feed_input(k, v)
            stream.feed_output(ok, ov)
            return stream.settle(comm)

        outs = ctx.run(
            run,
            per_rank_args=list(
                zip(
                    ctx.split(keys),
                    ctx.split(values),
                    ctx.split(out_k),
                    ctx.split(out_v),
                )
            ),
        )
        for res in outs:
            assert res.accepted
            assert res.details["per_seed_accepted"] == [True] * SEEDS.size


class TestCountWrapper:
    def test_matches_single_seed_counts(self):
        keys, _ = sum_workload(1_500, num_keys=80, seed=10)
        out_k, out_c = aggregate_reference(keys, np.ones(keys.size, np.int64))
        bad_c = out_c.copy()
        bad_c[4] += 1
        got = check_count_aggregation_multiseed(
            keys, (out_k, bad_c), SEEDS, config=WEAK
        )
        expected = [
            check_count_aggregation(
                keys, (out_k, bad_c), config=WEAK, seed=int(s)
            ).accepted
            for s in SEEDS
        ]
        assert got.details["per_seed_accepted"] == expected

    def test_sum_wrapper_accepts_correct(self):
        keys, values = sum_workload(1_000, num_keys=60, seed=11)
        out = aggregate_reference(keys, values)
        res = check_sum_aggregation_multiseed(
            (keys, values), out, SEEDS, config=STRONG
        )
        assert res.accepted
        assert res.details["per_seed_accepted"] == [True] * SEEDS.size


class TestAverageMultiseed:
    def _case(self):
        keys = np.array([1, 1, 1, 2, 2, 3], dtype=np.uint64)
        values = np.array([4, 5, 9, 10, 20, 7], dtype=np.int64)
        out_keys = np.array([1, 2, 3], dtype=np.uint64)
        num = np.array([6, 15, 7], dtype=np.int64)
        den = np.array([1, 1, 1], dtype=np.int64)
        counts = np.array([3, 2, 1], dtype=np.int64)
        return keys, values, out_keys, num, den, counts

    def test_accepts_correct(self):
        keys, values, out_keys, num, den, counts = self._case()
        res = check_average_aggregation_multiseed(
            (keys, values), out_keys, num, den, counts, SEEDS, config=STRONG
        )
        assert res.accepted
        assert res.details["per_seed_accepted"] == [True] * SEEDS.size

    @pytest.mark.parametrize("comm_size", [None, 2])
    def test_per_seed_matches_instances(self, comm_size):
        keys, values, out_keys, num, den, counts = self._case()
        bad_num = num.copy()
        bad_num[0] += 1  # subtle: weak config misses it under some seeds

        def single(seed, comm=None, args=None):
            k, v, ok = args if args else (keys, values, out_keys)
            return check_average_aggregation(
                (k, v), ok, bad_num, den, counts,
                config=WEAK, seed=seed, comm=comm,
            ).accepted

        if comm_size is None:
            got = check_average_aggregation_multiseed(
                (keys, values), out_keys, bad_num, den, counts,
                SEEDS, config=WEAK,
            )
            expected = [single(int(s)) for s in SEEDS]
            assert got.details["per_seed_accepted"] == expected
            assert got.accepted == all(expected)
        else:
            ctx = Context(comm_size)

            def run(comm, k, v):
                # result columns replicated; input distributed
                multi = check_average_aggregation_multiseed(
                    (k, v), out_keys, bad_num, den, counts,
                    SEEDS, config=WEAK, comm=comm,
                )
                singles = [
                    check_average_aggregation(
                        (k, v), out_keys, bad_num, den, counts,
                        config=WEAK, seed=int(s), comm=comm,
                    ).accepted
                    for s in SEEDS
                ]
                return multi.details["per_seed_accepted"], singles

            outs = ctx.run(
                run,
                per_rank_args=list(zip(ctx.split(keys), ctx.split(values))),
            )
            for per_seed, singles in outs:
                assert per_seed == singles

    def test_structural_failure_rejects_every_seed(self):
        keys, values, out_keys, num, den, counts = self._case()
        bad_counts = counts.copy()
        bad_counts[0] = 4  # den=1 divides, but sums no longer match; make
        bad_den = den.copy()
        bad_den[0] = 5  # 5 does not divide count 3 → structural rejection
        res = check_average_aggregation_multiseed(
            (keys, values), out_keys, num, bad_den, counts,
            SEEDS, config=WEAK,
        )
        assert not res.accepted
        assert res.details["per_seed_accepted"] == [False] * SEEDS.size
        assert not res.details["structural_ok"]

    def test_empty_input(self):
        empty_u = np.zeros(0, dtype=np.uint64)
        empty_i = np.zeros(0, dtype=np.int64)
        res = check_average_aggregation_multiseed(
            (empty_u, empty_i), empty_u, empty_i, empty_i, empty_i,
            SEEDS, config=WEAK,
        )
        assert res.accepted


class TestMedianMultiseed:
    def _case(self):
        keys = np.array([1, 1, 1, 2, 2, 2, 2], dtype=np.uint64)
        values = np.array([3, 9, 5, 1, 2, 8, 4], dtype=np.int64)
        out_keys = np.array([1, 2], dtype=np.uint64)
        num = np.array([5, 3], dtype=np.int64)  # med(3,5,9)=5, med(1,2,4,8)=3
        den = np.array([1, 1], dtype=np.int64)
        return keys, values, out_keys, num, den

    def test_accepts_correct(self):
        keys, values, out_keys, num, den = self._case()
        res = check_median_aggregation_multiseed(
            keys, values, out_keys, num, den, SEEDS, config=STRONG
        )
        assert res.accepted
        assert res.details["per_seed_accepted"] == [True] * SEEDS.size

    def test_per_seed_matches_instances(self):
        keys, values, out_keys, num, den = self._case()
        bad_num = num.copy()
        bad_num[0] = 6  # wrong median, weak config → mixed verdicts
        got = check_median_aggregation_multiseed(
            keys, values, out_keys, bad_num, den, SEEDS, config=WEAK
        )
        expected = [
            check_median_aggregation(
                keys, values, out_keys, bad_num, den,
                config=WEAK, seed=int(s),
            ).accepted
            for s in SEEDS
        ]
        assert got.details["per_seed_accepted"] == expected

    def test_structural_failure_rejects_every_seed(self):
        keys, values, out_keys, num, den = self._case()
        res = check_median_aggregation_multiseed(
            keys, values, out_keys[:1], num[:1], den[:1], SEEDS, config=WEAK
        )
        assert res.details["per_seed_accepted"] == [False] * SEEDS.size

    @pytest.mark.parametrize("p", [2])
    def test_distributed_matches_sequential(self, p):
        keys, values, out_keys, num, den = self._case()
        sequential = check_median_aggregation_multiseed(
            keys, values, out_keys, num, den, SEEDS, config=STRONG
        )
        ctx = Context(p)

        def run(comm, k, v):
            return check_median_aggregation_multiseed(
                k, v, out_keys, num, den, SEEDS, config=STRONG, comm=comm
            ).details["per_seed_accepted"]

        outs = ctx.run(
            run, per_rank_args=list(zip(ctx.split(keys), ctx.split(values)))
        )
        assert outs == [sequential.details["per_seed_accepted"]] * p


class TestMinMaxMultiseed:
    def _kv(self):
        keys = np.array([1, 1, 2, 2, 3, 3, 3], dtype=np.uint64)
        values = np.array([5, 3, 8, 2, 7, 9, 7], dtype=np.int64)
        return keys, values

    def test_sequential_accepts_correct(self):
        keys, values = self._kv()
        res = check_min_aggregation_multiseed(
            (keys, values),
            np.array([1, 2, 3], dtype=np.uint64),
            np.array([3, 2, 7], dtype=np.int64),
            np.zeros(3, dtype=np.int64),
            SEEDS,
        )
        assert res.accepted
        assert res.details["per_seed_accepted"] == [True] * SEEDS.size

    def test_max_rejects_wrong_value_every_seed(self):
        keys, values = self._kv()
        res = check_max_aggregation_multiseed(
            (keys, values),
            np.array([1, 2, 3], dtype=np.uint64),
            np.array([5, 8, 8], dtype=np.int64),  # max of key 3 is 9
            np.zeros(3, dtype=np.int64),
            SEEDS,
        )
        assert res.details["per_seed_accepted"] == [False] * SEEDS.size

    @pytest.mark.parametrize("p", [2, 4])
    def test_distributed_matches_single_seed_instances(self, p):
        keys, values = self._kv()
        res_keys = np.array([1, 2, 3], dtype=np.uint64)
        res_vals = np.array([3, 2, 7], dtype=np.int64)
        ctx = Context(p)
        # The certificate owner of each key is the PE holding its minimum.
        owners = np.zeros(3, dtype=np.int64)
        chunks = ctx.split(keys)
        vchunks = ctx.split(values)
        for key_idx, (key, val) in enumerate(zip(res_keys, res_vals)):
            for rank, (ck, cv) in enumerate(zip(chunks, vchunks)):
                if np.any((ck == key) & (cv == val)):
                    owners[key_idx] = rank
                    break

        def run(comm, k, v):
            multi = check_min_aggregation_multiseed(
                (k, v), res_keys, res_vals, owners, SEEDS, comm=comm
            )
            singles = [
                check_min_aggregation(
                    (k, v), res_keys, res_vals, owners, comm=comm, seed=int(s)
                ).accepted
                for s in SEEDS
            ]
            return multi.details["per_seed_accepted"], singles

        outs = ctx.run(run, per_rank_args=list(zip(chunks, vchunks)))
        for per_seed, singles in outs:
            assert per_seed == singles == [True] * SEEDS.size

    def test_distributed_detects_diverged_replica(self):
        keys, values = self._kv()
        res_keys = np.array([1, 2, 3], dtype=np.uint64)
        res_vals = np.array([3, 2, 7], dtype=np.int64)
        owners = np.zeros(3, dtype=np.int64)
        ctx = Context(2)

        def run(comm, k, v):
            vals = res_vals.copy()
            if comm.rank == 1:
                vals[0] += 1  # rank 1 holds a corrupted replica
            return check_min_aggregation_multiseed(
                (k, v), res_keys, vals, owners, SEEDS, comm=comm
            ).details["per_seed_accepted"]

        outs = ctx.run(
            run, per_rank_args=list(zip(ctx.split(keys), ctx.split(values)))
        )
        for per_seed in outs:
            assert per_seed == [False] * SEEDS.size


class TestGroupByMultiseed:
    def test_per_seed_matches_instances(self):
        keys, values = sum_workload(2_000, num_keys=100, seed=12)
        ctx = Context(2)

        def run(comm, k, v):
            from repro.dataflow.ops.group_by_key import group_by_key

            part = default_partitioner(comm.size)
            _, _, (pk, pv) = group_by_key(
                comm, k, v, partitioner=part, return_exchange=True
            )
            if comm.rank == 0 and pk.size:
                pv = pv.copy()
                pv[0] += 1  # corrupt one record: weak log_h → mixed verdicts
            multi = check_groupby_redistribution_multiseed(
                (k, v), (pk, pv), part, SEEDS, comm=comm,
                iterations=1, log_h=1,
            )
            singles = [
                check_groupby_redistribution(
                    (k, v), (pk, pv), part, comm=comm,
                    iterations=1, log_h=1, seed=int(s),
                ).accepted
                for s in SEEDS
            ]
            return multi.details["per_seed_accepted"], singles

        outs = ctx.run(
            run, per_rank_args=list(zip(ctx.split(keys), ctx.split(values)))
        )
        for per_seed, singles in outs:
            assert per_seed == singles
            assert any(per_seed) and not all(per_seed)  # weak: both occur

    def test_sequential_accepts_identity(self):
        part = default_partitioner(1)
        k = np.arange(10, dtype=np.uint64)
        v = np.ones(10, dtype=np.int64)
        res = check_groupby_redistribution_multiseed((k, v), (k, v), part, SEEDS)
        assert res.accepted
        assert res.details["per_seed_accepted"] == [True] * SEEDS.size

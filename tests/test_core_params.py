"""Tests for checker parameterisation and the Table 2 reproduction."""

import math

import pytest

from repro.core.params import (
    PAPER_TABLE2_ROWS,
    PAPER_TABLE3_ACCURACY,
    PAPER_TABLE3_SCALING,
    PermCheckConfig,
    SumCheckConfig,
    optimize_parameters,
    table3_expected_failure_rate,
)


class TestSumCheckConfig:
    def test_failure_bound_formula(self):
        cfg = SumCheckConfig(iterations=4, d=8, rhat=32)
        assert cfg.single_iteration_failure_bound == pytest.approx(1 / 32 + 1 / 8)
        assert cfg.failure_bound == pytest.approx((1 / 32 + 1 / 8) ** 4)

    def test_table_bits(self):
        # 4 iterations × 4 buckets × ⌈log2(2·8)⌉ = 4·4·4 = 64 (Table 3 row).
        assert SumCheckConfig(4, 4, 8).table_bits == 64
        assert SumCheckConfig(5, 16, 32).table_bits == 480

    def test_label_round_trip(self):
        for label in ("4x8 m5", "1x2 m31", "16x16 Tab64 m15", "5x128 Tab64 m11"):
            cfg = SumCheckConfig.parse(label)
            assert SumCheckConfig.parse(cfg.label()) == cfg

    def test_parse_unicode_times(self):
        cfg = SumCheckConfig.parse("4×8 CRC m5")
        assert (cfg.iterations, cfg.d, cfg.rhat) == (4, 8, 32)
        assert cfg.hash_family == "CRC"

    def test_parse_defaults_to_mix(self):
        assert SumCheckConfig.parse("4x8 m5").hash_family == "Mix"

    def test_parse_rejects_garbage(self):
        for bad in ("", "4x8", "x8 m5", "4x8 m", "4-8 m5"):
            with pytest.raises(ValueError):
                SumCheckConfig.parse(bad)

    def test_with_hash(self):
        cfg = SumCheckConfig.parse("4x8 m5").with_hash("CRC")
        assert cfg.hash_family == "CRC"
        assert cfg.d == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            SumCheckConfig(0, 8, 32)
        with pytest.raises(ValueError):
            SumCheckConfig(1, 1, 32)
        with pytest.raises(ValueError):
            SumCheckConfig(1, 8, 0)

    def test_rhat_floor_is_one_residue_bit(self):
        # r̂ = 1 is degenerate but valid: r is always 2, one bit per bucket.
        cfg = SumCheckConfig(2, 4, 1)
        assert cfg.residue_bits == 1
        assert cfg.table_bits == 2 * 4 * 1


class TestTable2:
    """The headline exact reproduction: every row, digit for digit."""

    @pytest.mark.parametrize(
        "row", PAPER_TABLE2_ROWS, ids=lambda r: f"b{r['b']}-d{r['delta']:.0e}"
    )
    def test_row_matches_paper(self, row):
        cfg = optimize_parameters(row["b"], row["delta"])
        assert cfg.d == row["d"]
        assert (cfg.rhat - 1).bit_length() == row["log_rhat"]
        assert cfg.iterations == row["its"]
        # Achieved δ matches the paper's 2-significant-digit value.
        assert cfg.failure_bound == pytest.approx(row["achieved"], rel=0.05)

    def test_result_satisfies_constraints(self):
        for row in PAPER_TABLE2_ROWS:
            cfg = optimize_parameters(row["b"], row["delta"])
            assert cfg.table_bits <= row["b"]
            assert cfg.failure_bound <= row["delta"]

    def test_minimality_of_iterations(self):
        """One fewer iteration cannot reach δ within the bit budget."""
        for row in PAPER_TABLE2_ROWS[:6]:
            cfg = optimize_parameters(row["b"], row["delta"])
            if cfg.iterations == 1:
                continue
            t = cfg.iterations - 1
            best = math.inf
            for m in range(1, 41):
                d = row["b"] // (t * (m + 1))
                if d >= 2:
                    best = min(best, (2.0**-m + 1.0 / d) ** t)
            assert best > row["delta"]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            optimize_parameters(4, 1e-4)
        with pytest.raises(ValueError):
            optimize_parameters(1024, 0.0)
        with pytest.raises(ValueError):
            optimize_parameters(1024, 1.5)


class TestTable3:
    def test_accuracy_block_parses(self):
        for label in PAPER_TABLE3_ACCURACY:
            cfg = SumCheckConfig.parse(label)
            assert cfg.failure_bound < 1

    def test_scaling_block_hash_families(self):
        families = {SumCheckConfig.parse(l).hash_family for l in PAPER_TABLE3_SCALING}
        assert families == {"CRC", "Tab64"}

    @pytest.mark.parametrize(
        "label,expected",
        [
            ("1x2 m31", 5e-1),
            ("4x4 m3", 2e-2),
            ("4x8 m5", 6e-4),
            ("8x16 CRC m15", 2.3e-10),
            ("16x16 Tab64 m15", 5.4e-20),
        ],
    )
    def test_delta_column(self, label, expected):
        assert table3_expected_failure_rate(label) == pytest.approx(
            expected, rel=0.1
        )


class TestPermCheckConfig:
    def test_failure_bound(self):
        assert PermCheckConfig(log_h=4).failure_bound == pytest.approx(1 / 16)
        assert PermCheckConfig(log_h=4, iterations=2).failure_bound == (
            pytest.approx(1 / 256)
        )

    def test_label(self):
        assert PermCheckConfig(log_h=8, hash_family="CRC").label() == "CRC8"

    def test_validation(self):
        with pytest.raises(ValueError):
            PermCheckConfig(log_h=0)
        with pytest.raises(ValueError):
            PermCheckConfig(log_h=65)
        with pytest.raises(ValueError):
            PermCheckConfig(log_h=4, iterations=0)

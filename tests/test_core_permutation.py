"""Tests for the permutation checkers (§5, Lemmata 4/5, Theorem 6)."""

import numpy as np
import pytest

from repro.comm.context import Context
from repro.core.permutation_checker import (
    HashSumPermutationChecker,
    check_permutation_gf64,
    check_permutation_hashsum,
    check_permutation_polynomial,
    wide_sum,
)


@pytest.fixture(scope="module")
def sequence():
    rng = np.random.default_rng(7)
    return rng.integers(0, 10**8, 5_000).astype(np.uint64)


_METHODS = {
    "hashsum": lambda e, o, seed=0, comm=None: check_permutation_hashsum(
        e, o, iterations=2, seed=seed, comm=comm
    ),
    "polynomial": lambda e, o, seed=0, comm=None: check_permutation_polynomial(
        e, o, delta=2.0**-20, universe=10**8 + 10, seed=seed, comm=comm
    ),
    "gf64": lambda e, o, seed=0, comm=None: check_permutation_gf64(
        e, o, iterations=1, seed=seed, comm=comm
    ),
}


@pytest.mark.parametrize("method", list(_METHODS))
class TestAllMethods:
    def test_accepts_identity(self, method, sequence):
        assert _METHODS[method](sequence, sequence.copy()).accepted

    def test_accepts_sorted_permutation(self, method, sequence):
        assert _METHODS[method](sequence, np.sort(sequence)).accepted

    def test_accepts_random_shuffle(self, method, sequence):
        rng = np.random.default_rng(1)
        assert _METHODS[method](sequence, rng.permutation(sequence)).accepted

    def test_detects_single_increment(self, method, sequence):
        bad = np.sort(sequence)
        bad[17] += 1
        assert not _METHODS[method](sequence, bad).accepted

    def test_detects_element_replacement(self, method, sequence):
        bad = sequence.copy()
        bad[0] = 99_999_999
        if bad[0] == sequence[0]:
            bad[0] -= 1
        assert not _METHODS[method](sequence, bad).accepted

    def test_detects_length_change(self, method, sequence):
        assert not _METHODS[method](sequence, sequence[:-1]).accepted

    def test_detects_duplicate_swap(self, method):
        """The multiset {5,5,7} vs {5,7,7} — the Lemma 4 TODO case."""
        e = np.array([5, 5, 7], dtype=np.uint64)
        o = np.array([5, 7, 7], dtype=np.uint64)
        assert not _METHODS[method](e, o).accepted

    def test_empty_sequences_accepted(self, method):
        empty = np.zeros(0, dtype=np.uint64)
        assert _METHODS[method](empty, empty.copy()).accepted

    @pytest.mark.parametrize("p", [2, 4])
    def test_distributed(self, method, sequence, p):
        ctx = Context(p)
        out = np.sort(sequence)
        bad = out.copy()
        bad[3] += 2

        def run(comm, e, o):
            return _METHODS[method](e, o, seed=5, comm=comm).accepted

        good = ctx.run(
            run, per_rank_args=list(zip(ctx.split(sequence), ctx.split(out)))
        )
        assert good == [True] * p
        rejected = ctx.run(
            run, per_rank_args=list(zip(ctx.split(sequence), ctx.split(bad)))
        )
        assert rejected == [False] * p


class TestWideSum:
    def test_empty(self):
        assert wide_sum(np.zeros(0, dtype=np.uint64)) == 0

    def test_matches_python_sum(self, rng):
        arr = rng.integers(0, 2**64, 1000, dtype=np.uint64)
        assert wide_sum(arr) == sum(int(x) for x in arr)

    def test_no_wraparound_on_max_values(self):
        arr = np.full(1000, 2**64 - 1, dtype=np.uint64)
        assert wide_sum(arr) == 1000 * (2**64 - 1)


class TestHashSumSpecifics:
    def test_multi_sequence_sides(self):
        """Union-style invocation: E = [S1, S2] vs O = concat."""
        s1 = np.array([1, 2, 3], dtype=np.uint64)
        s2 = np.array([4, 5], dtype=np.uint64)
        out = np.array([5, 3, 1, 4, 2], dtype=np.uint64)
        assert check_permutation_hashsum([s1, s2], out, seed=1).accepted

    def test_signed_input_coerced(self):
        e = np.array([-1, -2, 3], dtype=np.int64)
        o = np.array([3, -2, -1], dtype=np.int64)
        assert check_permutation_hashsum(e, o, seed=1).accepted

    def test_failure_bound_attribute(self):
        checker = HashSumPermutationChecker(iterations=2, log_h=16)
        assert checker.failure_bound == pytest.approx(2.0**-32)

    def test_log_h_exceeding_family_bits_rejected(self):
        with pytest.raises(ValueError):
            HashSumPermutationChecker(hash_family="CRC", log_h=33)

    def test_iterations_validated(self):
        with pytest.raises(ValueError):
            HashSumPermutationChecker(iterations=0)

    def test_truncation_miss_rate(self):
        """At log_h=1, a single replaced element evades with P ≈ 1/2."""
        e = np.array([10], dtype=np.uint64)
        o = np.array([11], dtype=np.uint64)
        misses = sum(
            check_permutation_hashsum(e, o, iterations=1, log_h=1, seed=s).accepted
            for s in range(600)
        )
        assert 0.4 < misses / 600 < 0.6


class TestPolynomialSpecifics:
    def test_prime_exceeds_universe_and_n_over_delta(self):
        e = np.arange(100, dtype=np.uint64)
        result = check_permutation_polynomial(
            e, e.copy(), delta=0.01, universe=1 << 20, seed=0
        )
        r = result.details["prime"]
        assert r > max(100 / 0.01, (1 << 20) - 1)

    def test_large_universe_python_int_path(self):
        """Primes beyond 2^31 exercise the scalar fold."""
        e = np.array([2**50, 2**51, 7], dtype=np.uint64)
        o = np.array([7, 2**51, 2**50], dtype=np.uint64)
        assert check_permutation_polynomial(
            e, o, delta=0.01, universe=1 << 52, seed=0
        ).accepted
        bad = o.copy()
        bad[0] = 8
        assert not check_permutation_polynomial(
            e, bad, delta=0.01, universe=1 << 52, seed=0
        ).accepted

    def test_miss_rate_below_delta(self):
        """Off-by-one faults must evade at a rate well below δ = 0.05."""
        e = np.arange(50, dtype=np.uint64)
        bad = e.copy()
        bad[0] = 50
        misses = sum(
            check_permutation_polynomial(
                e, bad, delta=0.05, universe=64, seed=s
            ).accepted
            for s in range(400)
        )
        assert misses / 400 <= 0.05

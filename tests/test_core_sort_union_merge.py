"""Tests for the sort (Thm 7), union (Cor 12) and merge (Cor 13) checkers."""

import numpy as np
import pytest

from repro.comm.context import Context
from repro.core.merge_checker import check_merge
from repro.core.sort_checker import check_globally_sorted, check_sort, locally_sorted
from repro.core.union_checker import check_union


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(3)
    return rng.integers(0, 10**6, 4_000).astype(np.uint64)


class TestLocallySorted:
    def test_sorted(self):
        assert locally_sorted(np.array([1, 2, 2, 5]))

    def test_unsorted(self):
        assert not locally_sorted(np.array([1, 3, 2]))

    def test_trivial(self):
        assert locally_sorted(np.array([]))
        assert locally_sorted(np.array([9]))


class TestGloballySorted:
    def test_sequential(self, data):
        assert check_globally_sorted(np.sort(data)).accepted
        assert not check_globally_sorted(data).accepted or locally_sorted(data)

    @pytest.mark.parametrize("p", [2, 4])
    def test_distributed_sorted(self, data, p):
        ctx = Context(p)
        out = np.sort(data)
        verdicts = ctx.run(
            lambda comm, c: check_globally_sorted(c, comm=comm).accepted,
            per_rank_args=ctx.split(out),
        )
        assert verdicts == [True] * p

    @pytest.mark.parametrize("p", [2, 4])
    def test_distributed_boundary_violation(self, data, p):
        """Each PE slice sorted, but slices in the wrong global order."""
        ctx = Context(p)
        out = np.sort(data)
        chunks = ctx.split(out)[::-1]  # reversed PE order
        verdicts = ctx.run(
            lambda comm, c: check_globally_sorted(c, comm=comm).accepted,
            per_rank_args=chunks,
        )
        assert verdicts == [False] * p

    def test_empty_pe_in_the_middle(self, data):
        """Empty local slices must not break the boundary logic."""
        ctx = Context(4)
        out = np.sort(data)
        chunks = [out[:2000], out[2000:2000], out[2000:3000], out[3000:]]
        verdicts = ctx.run(
            lambda comm, c: check_globally_sorted(c, comm=comm).accepted,
            per_rank_args=chunks,
        )
        assert verdicts == [True] * 4


class TestCheckSort:
    @pytest.mark.parametrize("method", ["hashsum", "polynomial", "gf64"])
    def test_accepts_true_sort(self, data, method):
        result = check_sort(data, np.sort(data), method=method, universe=10**6, seed=1)
        assert result.accepted

    def test_rejects_sorted_but_wrong_multiset(self, data):
        bad = np.sort(data)
        bad[0] = 0  # still sorted, multiset changed (unless it was 0)
        bad[-1] = 10**6
        assert not check_sort(data, bad, seed=1).accepted

    def test_rejects_right_multiset_wrong_order(self, data):
        assert not check_sort(data, data[::-1], seed=1).accepted or bool(
            np.all(data[::-1][:-1] <= data[::-1][1:])
        )

    def test_unknown_method_raises(self, data):
        with pytest.raises(ValueError):
            check_sort(data, np.sort(data), method="magic")

    @pytest.mark.parametrize("p", [2, 4])
    def test_distributed(self, data, p):
        ctx = Context(p)
        out = np.sort(data)

        def run(comm, e, o):
            return check_sort(e, o, seed=2, comm=comm).accepted

        verdicts = ctx.run(
            run, per_rank_args=list(zip(ctx.split(data), ctx.split(out)))
        )
        assert verdicts == [True] * p


class TestCheckUnion:
    def test_accepts_correct_union(self, data):
        s1, s2 = data[:2500], data[2500:]
        shuffled = np.random.default_rng(0).permutation(data)
        assert check_union(s1, s2, shuffled, seed=1).accepted

    def test_rejects_missing_element(self, data):
        s1, s2 = data[:2500], data[2500:]
        assert not check_union(s1, s2, data[:-1], seed=1).accepted

    def test_rejects_doubled_element(self, data):
        s1, s2 = data[:2500], data[2500:]
        doubled = np.concatenate([data, data[:1]])
        assert not check_union(s1, s2, doubled, seed=1).accepted

    @pytest.mark.parametrize("method", ["hashsum", "polynomial", "gf64"])
    def test_methods(self, data, method):
        s1, s2 = data[:100], data[100:200]
        out = np.concatenate([s2, s1])
        assert check_union(
            s1, s2, out, method=method, universe=10**6, seed=1
        ).accepted

    @pytest.mark.parametrize("p", [2, 4])
    def test_distributed(self, data, p):
        ctx = Context(p)
        s1, s2 = data[:2500], data[2500:]

        def run(comm, a, b, o):
            return check_union(a, b, o, seed=3, comm=comm).accepted

        verdicts = ctx.run(
            run,
            per_rank_args=list(
                zip(ctx.split(s1), ctx.split(s2), ctx.split(data))
            ),
        )
        assert verdicts == [True] * p


class TestCheckMerge:
    def test_accepts_correct_merge(self, data):
        s1 = np.sort(data[:2500])
        s2 = np.sort(data[2500:])
        merged = np.sort(data)
        assert check_merge(s1, s2, merged, seed=1).accepted

    def test_rejects_unsorted_output(self, data):
        s1 = np.sort(data[:2500])
        s2 = np.sort(data[2500:])
        unsorted = np.concatenate([s1, s2])
        result = check_merge(s1, s2, unsorted, seed=1)
        if not bool(np.all(unsorted[:-1] <= unsorted[1:])):
            assert not result.accepted

    def test_rejects_wrong_multiset(self, data):
        s1 = np.sort(data[:2500])
        s2 = np.sort(data[2500:])
        bad = np.sort(data).copy()
        bad[10] += 1
        bad.sort()
        assert not check_merge(s1, s2, bad, seed=1).accepted

"""Tests for the §4 sum-aggregation checker (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.params import SumCheckConfig
from repro.core.sum_checker import (
    SumAggregationChecker,
    check_count_aggregation,
    check_sum_aggregation,
)
from repro.workloads.kv import aggregate_reference, sum_workload

CFG = SumCheckConfig.parse("4x8 m15")
STRONG = SumCheckConfig.parse("8x16 m15")


@pytest.fixture(scope="module")
def workload():
    keys, values = sum_workload(5_000, num_keys=400, seed=11)
    out_k, out_v = aggregate_reference(keys, values)
    return keys, values, out_k, out_v


class TestOneSidedError:
    """A checker must never reject a correct result."""

    def test_accepts_correct_result(self, workload):
        keys, values, out_k, out_v = workload
        for seed in range(25):
            result = check_sum_aggregation(
                (keys, values), (out_k, out_v), CFG, seed=seed
            )
            assert result.accepted, f"false rejection at seed {seed}"

    def test_accepts_permuted_output(self, workload):
        keys, values, out_k, out_v = workload
        perm = np.random.default_rng(0).permutation(out_k.size)
        result = check_sum_aggregation(
            (keys, values), (out_k[perm], out_v[perm]), CFG, seed=3
        )
        assert result.accepted

    def test_accepts_distributed_output_split(self, workload):
        """The asserted result may live anywhere — only multisets matter."""
        keys, values, out_k, out_v = workload
        # Split one key's sum into two partial entries is NOT allowed (it
        # changes the multiset) — but splitting the key *list* is fine.
        half = out_k.size // 2
        checker = SumAggregationChecker(CFG, seed=5)
        t1 = checker.local_tables(out_k[:half], out_v[:half])
        t2 = checker.local_tables(out_k[half:], out_v[half:])
        combined = checker.combine(t1, t2)
        full = checker.local_tables(out_k, out_v)
        assert np.array_equal(combined, full)

    def test_empty_input_empty_output(self):
        empty = (np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64))
        assert check_sum_aggregation(empty, empty, CFG, seed=1).accepted


class TestDetection:
    def test_single_value_off_by_one(self, workload):
        keys, values, out_k, out_v = workload
        bad = out_v.copy()
        bad[7] += 1
        result = check_sum_aggregation((keys, values), (out_k, bad), STRONG, seed=2)
        assert not result.accepted

    def test_dropped_key(self, workload):
        keys, values, out_k, out_v = workload
        result = check_sum_aggregation(
            (keys, values), (out_k[1:], out_v[1:]), STRONG, seed=2
        )
        assert not result.accepted

    def test_extra_key(self, workload):
        keys, values, out_k, out_v = workload
        ek = np.append(out_k, np.uint64(10**9))
        ev = np.append(out_v, np.int64(1))
        result = check_sum_aggregation((keys, values), (ek, ev), STRONG, seed=2)
        assert not result.accepted

    def test_swapped_keys(self, workload):
        keys, values, out_k, out_v = workload
        bad_k = out_k.copy()
        # Swap the sums of two keys with different sums.
        i, j = 0, 1
        assert out_v[i] != out_v[j] or True
        bad_v = out_v.copy()
        bad_v[i], bad_v[j] = out_v[j], out_v[i]
        if bad_v[i] != out_v[i]:
            result = check_sum_aggregation(
                (keys, values), (bad_k, bad_v), STRONG, seed=2
            )
            assert not result.accepted

    def test_detection_rate_matches_bound(self):
        """Weak config (1x2 m31): single-key faults evade with P ≈ 1/2."""
        cfg = SumCheckConfig(iterations=1, d=2, rhat=1 << 31)
        misses = 0
        trials = 400
        for seed in range(trials):
            checker = SumAggregationChecker(cfg, seed)
            if not checker.detects_delta(
                np.array([123], dtype=np.uint64), np.array([5], dtype=np.int64)
            ):
                misses += 1
        # P[miss] = P[both keys同bucket]... single key: delta lands in one
        # bucket; the diff is nonzero there unless 5 ≡ 0 mod r (impossible
        # for r > 5) — wait: a single-key delta is ALWAYS detected for d≥1.
        assert misses == 0

    def test_two_key_cancellation_rate(self):
        """Two opposite deltas evade iff hashed to the same bucket (P=1/d)."""
        cfg = SumCheckConfig(iterations=1, d=2, rhat=1 << 31)
        misses = sum(
            not SumAggregationChecker(cfg, seed).detects_delta(
                np.array([123, 456], dtype=np.uint64),
                np.array([5, -5], dtype=np.int64),
            )
            for seed in range(600)
        )
        assert 0.4 < misses / 600 < 0.6  # expect 1/2


class TestDeltaShortcut:
    """detects_delta must agree exactly with the full check."""

    @pytest.mark.parametrize("seed", range(30))
    def test_agreement_on_random_faults(self, seed):
        rng = np.random.default_rng(seed)
        keys, values = sum_workload(500, num_keys=50, seed=seed)
        out_k, out_v = aggregate_reference(keys, values)
        # Random sparse fault on the output.
        idx = rng.integers(out_k.size)
        delta = int(rng.integers(1, 100))
        bad_v = out_v.copy()
        bad_v[idx] += delta
        cfg = SumCheckConfig(iterations=1, d=2, rhat=8)  # weak → misses occur
        checker = SumAggregationChecker(cfg, seed=seed * 17)
        full = checker.check_local((keys, values), (out_k, bad_v))
        shortcut = checker.detects_delta(
            np.array([out_k[idx]], dtype=np.uint64),
            np.array([delta], dtype=np.int64),
        )
        assert full.accepted == (not shortcut)


class TestWireFormat:
    @pytest.mark.parametrize(
        "label", ["4x8 m5", "1x2 m31", "8x16 m15", "3x37 m7"]
    )
    def test_pack_unpack_round_trip(self, label):
        cfg = SumCheckConfig.parse(label)
        checker = SumAggregationChecker(cfg, seed=1)
        rng = np.random.default_rng(0)
        table = np.stack(
            [
                rng.integers(0, int(m), cfg.d, dtype=np.int64)
                for m in checker.moduli
            ]
        )
        assert np.array_equal(checker.unpack(checker.pack(table)), table)

    def test_packed_size_matches_table_bits(self):
        cfg = SumCheckConfig.parse("8x16 m15")
        checker = SumAggregationChecker(cfg, seed=1)
        table = np.zeros((cfg.iterations, cfg.d), dtype=np.int64)
        packed = checker.pack(table)
        assert len(packed) == (cfg.table_bits + 7) // 8


class TestModuli:
    def test_in_half_open_interval(self):
        cfg = SumCheckConfig.parse("8x16 m5")
        for seed in range(20):
            checker = SumAggregationChecker(cfg, seed)
            assert np.all(checker.moduli > cfg.rhat)
            assert np.all(checker.moduli <= 2 * cfg.rhat)

    def test_vary_across_iterations_and_seeds(self):
        cfg = SumCheckConfig.parse("8x16 m15")
        a = SumAggregationChecker(cfg, 1).moduli
        b = SumAggregationChecker(cfg, 2).moduli
        assert not np.array_equal(a, b)
        assert len(set(a.tolist())) > 1


class TestXorOperator:
    def test_accepts_correct_xor_aggregation(self):
        keys = np.array([1, 1, 2, 2, 2], dtype=np.uint64)
        values = np.array([3, 5, 7, 9, 11], dtype=np.int64)
        out_k = np.array([1, 2], dtype=np.uint64)
        out_v = np.array([3 ^ 5, 7 ^ 9 ^ 11], dtype=np.int64)
        result = check_sum_aggregation(
            (keys, values), (out_k, out_v), STRONG, seed=1, operator="xor"
        )
        assert result.accepted

    def test_detects_xor_fault(self):
        keys = np.array([1, 1, 2], dtype=np.uint64)
        values = np.array([3, 5, 7], dtype=np.int64)
        out_k = np.array([1, 2], dtype=np.uint64)
        out_v = np.array([3 ^ 5 ^ 1, 7], dtype=np.int64)
        result = check_sum_aggregation(
            (keys, values), (out_k, out_v), STRONG, seed=1, operator="xor"
        )
        assert not result.accepted

    def test_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            SumAggregationChecker(CFG, 0, operator="min")


class TestCountAggregation:
    def test_accepts_correct_counts(self):
        keys = np.array([5, 5, 5, 9], dtype=np.uint64)
        out = (np.array([5, 9], dtype=np.uint64), np.array([3, 1], dtype=np.int64))
        assert check_count_aggregation(keys, out, STRONG, seed=1).accepted

    def test_detects_wrong_count(self):
        keys = np.array([5, 5, 5, 9], dtype=np.uint64)
        out = (np.array([5, 9], dtype=np.uint64), np.array([2, 1], dtype=np.int64))
        assert not check_count_aggregation(keys, out, STRONG, seed=1).accepted


class TestInt64MinRegression:
    """The fast-path guard must survive |int64 min| (np.abs overflows)."""

    def test_batched_tables_equal_exact_scatter_path(self):
        from repro.core.sum_checker import _coerce_keys, _scatter_add_mod

        cfg = SumCheckConfig.parse("4x8 m15")
        checker = SumAggregationChecker(cfg, seed=3)
        keys = np.array([7, 11, 7, 13], dtype=np.uint64)
        values = np.array([-(2**63), 3, 5, -(2**63)], dtype=np.int64)
        tables = checker.local_tables(keys, values)
        buckets = checker.assigner.assign(_coerce_keys(keys))
        expected = np.zeros((cfg.iterations, cfg.d), dtype=np.int64)
        for j in range(cfg.iterations):
            r = int(checker.moduli[j])
            _scatter_add_mod(expected[j], buckets[j], values % r, r)
        assert np.array_equal(tables, expected)

    def test_max_magnitude_is_overflow_safe(self):
        from repro.core.sum_checker import _max_magnitude

        assert _max_magnitude(np.array([-(2**63)], dtype=np.int64)) == 2**63
        assert _max_magnitude(np.array([], dtype=np.int64)) == 0
        assert _max_magnitude(np.array([-3, 2], dtype=np.int64)) == 3
        # np.abs is the broken baseline this guards against.
        assert int(np.abs(np.array([-(2**63)], dtype=np.int64)).max()) < 0

    def test_guard_chooses_slow_path_not_inexact_float(self):
        # One int64-min value among small ones: the old guard computed a
        # *negative* bound and took the float64 bincount path, whose sums
        # (−2^63 + small) exceed the 2^52 mantissa and round.
        cfg = SumCheckConfig(iterations=1, d=2, rhat=1 << 15)
        keys = np.array([5, 5], dtype=np.uint64)
        values = np.array([-(2**63), 1], dtype=np.int64)
        table = SumAggregationChecker(cfg, seed=1).local_tables(keys, values)
        r = int(SumAggregationChecker(cfg, seed=1).moduli[0])
        assert table.ravel()[table.ravel() != 0][0] == ((-(2**63) + 1) % r)


class TestInputValidation:
    def test_float_values_rejected(self):
        with pytest.raises(TypeError):
            check_sum_aggregation(
                (np.array([1], dtype=np.uint64), np.array([1.5])),
                (np.array([1], dtype=np.uint64), np.array([1], dtype=np.int64)),
                CFG,
            )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            check_sum_aggregation(
                (np.array([1, 2], dtype=np.uint64), np.array([1], dtype=np.int64)),
                (np.array([1], dtype=np.uint64), np.array([1], dtype=np.int64)),
                CFG,
            )

    def test_float_keys_rejected(self):
        # astype(np.uint64) would truncate 1.5 and 1.7 to the same key 1,
        # merging distinct keys — the checker could then accept an output
        # it must reject.  Non-integer key dtypes now raise instead.
        with pytest.raises(TypeError):
            check_sum_aggregation(
                (np.array([1.5, 1.7]), np.array([1, 2], dtype=np.int64)),
                (
                    np.array([1], dtype=np.uint64),
                    np.array([3], dtype=np.int64),
                ),
                CFG,
            )

    def test_signed_keys_coerced(self):
        keys = np.array([-1, 5], dtype=np.int64)
        values = np.array([2, 3], dtype=np.int64)
        result = check_sum_aggregation((keys, values), (keys, values), CFG, seed=1)
        assert result.accepted


class TestDistributed:
    @pytest.mark.parametrize("p", [2, 4])
    def test_distributed_matches_sequential(self, p, workload):
        from repro.comm.context import Context

        keys, values, out_k, out_v = workload
        bad_v = out_v.copy()
        bad_v[0] += 1
        ctx = Context(p)
        key_chunks = ctx.split(keys)
        val_chunks = ctx.split(values)
        ok_chunks = ctx.split(out_k)
        ov_chunks = ctx.split(out_v)
        bad_chunks = ctx.split(bad_v)

        def good(comm, k, v, ok, ov):
            return check_sum_aggregation(
                (k, v), (ok, ov), STRONG, seed=9, comm=comm
            ).accepted

        verdicts = ctx.run(
            good,
            per_rank_args=list(
                zip(key_chunks, val_chunks, ok_chunks, ov_chunks)
            ),
        )
        assert verdicts == [True] * p

        verdicts = ctx.run(
            good,
            per_rank_args=list(
                zip(key_chunks, val_chunks, ok_chunks, bad_chunks)
            ),
        )
        assert verdicts == [False] * p


class TestWireFormatChunked:
    """The chunked bit-(un)packing must stay exact for any residue width."""

    @pytest.mark.parametrize("log_rhat", [2, 4, 6, 10, 16, 30])
    def test_round_trip_property_odd_residue_bits(self, log_rhat):
        # rhat = 2^k gives residue_bits = k + 1: odd widths for even k.
        cfg = SumCheckConfig(iterations=5, d=13, rhat=1 << log_rhat)
        checker = SumAggregationChecker(cfg, seed=log_rhat)
        rng = np.random.default_rng(log_rhat)
        for _ in range(5):
            table = np.stack(
                [
                    rng.integers(0, int(m), cfg.d, dtype=np.int64)
                    for m in checker.moduli
                ]
            )
            assert np.array_equal(checker.unpack(checker.pack(table)), table)
            assert len(checker.pack(table)) == (cfg.table_bits + 7) // 8

    def test_round_trip_one_residue_bit(self):
        # r̂ = 1 is the width floor: r is always 2, one bit per residue.
        cfg = SumCheckConfig(iterations=3, d=5, rhat=1)
        checker = SumAggregationChecker(cfg, seed=7)
        assert cfg.residue_bits == 1
        assert np.all(checker.moduli == 2)
        rng = np.random.default_rng(7)
        table = rng.integers(0, 2, (cfg.iterations, cfg.d), dtype=np.int64)
        assert np.array_equal(checker.unpack(checker.pack(table)), table)
        assert len(checker.pack(table)) == (cfg.table_bits + 7) // 8

    def test_round_trip_widest_residues(self):
        # r̂ near 2^62 gives 63-bit residues — the widest int64 can carry.
        cfg = SumCheckConfig(iterations=2, d=7, rhat=(1 << 62) - 1)
        checker = SumAggregationChecker(cfg, seed=5)
        assert cfg.residue_bits == 63
        assert np.all(checker.moduli > cfg.rhat)
        rng = np.random.default_rng(5)
        table = np.stack(
            [
                rng.integers(0, int(m), cfg.d, dtype=np.int64)
                for m in checker.moduli
            ]
        )
        assert np.array_equal(checker.unpack(checker.pack(table)), table)

    @pytest.mark.parametrize("extra", [-3, 1, 7])
    def test_round_trip_table_not_multiple_of_pack_chunk(self, extra):
        from repro.core.sum_checker import _PACK_CHUNK_RESIDUES

        cfg = SumCheckConfig(
            iterations=1, d=_PACK_CHUNK_RESIDUES + extra, rhat=1 << 2
        )
        checker = SumAggregationChecker(cfg, seed=extra & 7)
        rng = np.random.default_rng(extra & 7)
        table = rng.integers(
            0, int(checker.moduli[0]), (1, cfg.d), dtype=np.int64
        )
        assert np.array_equal(checker.unpack(checker.pack(table)), table)
        assert len(checker.pack(table)) == (cfg.table_bits + 7) // 8

    def test_xor_wire_round_trip(self):
        # The xor operator ships raw 64-bit lanes; negative int64 views
        # must survive the trip bit-for-bit.
        cfg = SumCheckConfig.parse("4x8 m5")
        checker = SumAggregationChecker(cfg, seed=2, operator="xor")
        rng = np.random.default_rng(2)
        table = rng.integers(
            -(2**63), 2**63, (cfg.iterations, cfg.d), dtype=np.int64
        )
        assert np.array_equal(checker.unpack(checker.pack(table)), table)

    def test_many_chunk_boundaries(self):
        # A table larger than the pack chunk exercises chunk stitching.
        from repro.core.sum_checker import _PACK_CHUNK_RESIDUES

        cfg = SumCheckConfig(
            iterations=3, d=_PACK_CHUNK_RESIDUES // 2 + 5, rhat=1 << 4
        )
        checker = SumAggregationChecker(cfg, seed=2)
        rng = np.random.default_rng(2)
        table = np.stack(
            [
                rng.integers(0, int(m), cfg.d, dtype=np.int64)
                for m in checker.moduli
            ]
        )
        assert np.array_equal(checker.unpack(checker.pack(table)), table)


class TestVectorizedModuli:
    def test_same_drawn_values_as_scalar_loop(self):
        """The batched modulus draw reproduces the historical per-iteration
        scalar draws exactly."""
        from repro.util.rng import derive_seed, uniform_below

        for label, seed in (("8x16 m15", 3), ("1x2 m31", 0xF163), ("16x16 m15", 9)):
            cfg = SumCheckConfig.parse(label)
            checker = SumAggregationChecker(cfg, seed)
            expected = [
                cfg.rhat
                + 1
                + uniform_below(
                    derive_seed(seed, "sum-checker", "modulus", j), cfg.rhat
                )
                for j in range(cfg.iterations)
            ]
            assert checker.moduli.tolist() == expected

    def test_batched_moduli_match_checker_instances(self):
        from repro.core.sum_checker import draw_moduli

        cfg = SumCheckConfig.parse("4x8 m7")
        seeds = np.arange(20, dtype=np.uint64) * np.uint64(101) + np.uint64(3)
        matrix = draw_moduli(cfg, seeds)
        assert matrix.shape == (20, cfg.iterations)
        for t in range(20):
            checker = SumAggregationChecker(cfg, int(seeds[t]))
            assert np.array_equal(matrix[t], checker.moduli)

"""Tests for adaptive seed escalation in the dataflow pipeline.

Contract under test: one seed settles inline; escalation (per policy)
re-checks under ``T`` fresh seeds whose per-seed verdicts are identical to
independent single-seed checks — and the escalation consumes the already
condensed aggregates instead of re-reading the raw data.
"""

import numpy as np
import pytest

import repro.dataflow.pipeline as pipeline_mod
from repro.comm.context import Context
from repro.core.params import SumCheckConfig
from repro.core.sort_checker import check_sort
from repro.core.sum_checker import SumAggregationChecker
from repro.core.zip_checker import check_zip
from repro.dataflow.dia import DIA
from repro.dataflow.pipeline import (
    AdaptiveCheckPolicy,
    CheckedRunStats,
    adaptive_permutation_check,
    adaptive_sum_check,
    adaptive_zip_check,
    checked_reduce_by_key,
    checked_sort,
)
from repro.faults.manipulators import get_kv_manipulator, get_seq_manipulator
from repro.workloads.kv import aggregate_reference, sum_workload
from repro.workloads.uniform import uniform_integers

WEAK = SumCheckConfig.parse("1x2 m4")
STRONG = SumCheckConfig.parse("8x16 m15")


class TestPolicy:
    def test_validates_mode(self):
        with pytest.raises(ValueError):
            AdaptiveCheckPolicy(escalate_on="sometimes")

    def test_validates_seed_count(self):
        with pytest.raises(ValueError):
            AdaptiveCheckPolicy(escalation_seeds=0)
        with pytest.raises(ValueError):
            AdaptiveCheckPolicy(
                escalation_seeds=np.zeros(0, dtype=np.uint64)
            )

    def test_resolve_derives_from_primary_seed(self):
        policy = AdaptiveCheckPolicy(escalation_seeds=5)
        a = policy.resolve_seeds(7)
        b = policy.resolve_seeds(7)
        c = policy.resolve_seeds(8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert a.size == 5

    def test_resolve_passes_explicit_array_through(self):
        seeds = np.array([3, 1, 4], dtype=np.uint64)
        policy = AdaptiveCheckPolicy(escalation_seeds=seeds)
        assert np.array_equal(policy.resolve_seeds(99), seeds)

    def test_should_escalate_matrix(self):
        assert AdaptiveCheckPolicy(escalate_on="reject").should_escalate(False)
        assert not AdaptiveCheckPolicy(escalate_on="reject").should_escalate(True)
        assert AdaptiveCheckPolicy(escalate_on="always").should_escalate(True)
        assert not AdaptiveCheckPolicy(escalate_on="never").should_escalate(False)


class TestOverheadRatio:
    """Satellite regression: zero-duration runs must not claim no overhead."""

    def test_zero_operation_with_checker_work_is_infinite(self):
        stats = CheckedRunStats(operation_seconds=0.0, checker_seconds=0.5)
        assert stats.overhead_ratio == float("inf")

    def test_zero_everything_is_neutral(self):
        stats = CheckedRunStats(operation_seconds=0.0, checker_seconds=0.0)
        assert stats.overhead_ratio == 1.0

    def test_escalation_counts_as_checker_work(self):
        stats = CheckedRunStats(
            operation_seconds=0.0,
            checker_seconds=0.0,
            escalated=True,
            escalation_seconds=0.2,
        )
        assert stats.overhead_ratio == float("inf")
        assert stats.total_seconds == pytest.approx(0.2)

    def test_normal_ratio_includes_escalation(self):
        stats = CheckedRunStats(
            operation_seconds=1.0,
            checker_seconds=0.1,
            escalated=True,
            escalation_seconds=0.4,
        )
        assert stats.overhead_ratio == pytest.approx(1.5)


class TestAdaptiveSumCheck:
    def _workload(self):
        keys, values = sum_workload(2_000, num_keys=100, seed=1)
        out_k, out_v = aggregate_reference(keys, values)
        bad_v = out_v.copy()
        # A cancelable ±1 pair: weak configs miss it when both keys share
        # a bucket, so per-seed verdicts genuinely vary.
        bad_v[0] += 1
        bad_v[1] -= 1
        return keys, values, out_k, out_v, bad_v

    def test_clean_run_does_not_escalate(self):
        keys, values, out_k, out_v, _ = self._workload()
        result = adaptive_sum_check(
            (keys, values), (out_k, out_v), STRONG, seed=2
        )
        assert result.accepted
        assert result.details["primary_accepted"]
        assert not result.details["adaptive"]["escalated"]
        assert result.details["adaptive"]["per_seed_accepted"] is None

    def test_primary_verdict_matches_single_seed_checker(self):
        keys, values, out_k, out_v, bad_v = self._workload()
        for seed in range(12):
            result = adaptive_sum_check(
                (keys, values), (out_k, bad_v), WEAK, seed=seed,
                policy=AdaptiveCheckPolicy(escalate_on="never"),
            )
            ref = SumAggregationChecker(WEAK, seed).check_local(
                (keys, values), (out_k, bad_v)
            )
            assert result.details["primary_accepted"] == ref.accepted
            assert result.accepted == ref.accepted

    def test_escalation_per_seed_matches_independent_checkers(self):
        keys, values, out_k, out_v, bad_v = self._workload()
        policy = AdaptiveCheckPolicy(escalation_seeds=16)
        # Find a primary seed whose weak checker misses the error, then
        # force escalation via "always" to exercise the suspicion path too.
        result = adaptive_sum_check(
            (keys, values), (out_k, bad_v), WEAK, seed=3,
            policy=AdaptiveCheckPolicy(escalation_seeds=16, escalate_on="always"),
        )
        adaptive = result.details["adaptive"]
        assert adaptive["escalated"]
        expected = [
            SumAggregationChecker(WEAK, int(s))
            .check_local((keys, values), (out_k, bad_v))
            .accepted
            for s in policy.resolve_seeds(3)
        ]
        assert adaptive["per_seed_accepted"] == expected
        assert any(expected) and not all(expected)  # weak: mixed verdicts
        assert not result.accepted  # any rejecting seed proves the error

    def test_rejecting_primary_escalates_and_confirms(self):
        keys, values, out_k, out_v, bad_v = self._workload()
        result = adaptive_sum_check(
            (keys, values), (out_k, bad_v), STRONG, seed=4,
            policy=AdaptiveCheckPolicy(escalation_seeds=8),
        )
        assert not result.details["primary_accepted"]
        assert result.details["adaptive"]["escalated"]
        # A real data error: every fresh seed confirms the rejection.
        assert result.details["adaptive"]["per_seed_accepted"] == [False] * 8
        assert not result.accepted

    def test_escalation_reuses_condensation(self, monkeypatch):
        """Escalation must not trigger a second condensation pass."""
        keys, values, out_k, out_v, bad_v = self._workload()
        calls = []
        original = pipeline_mod.condense_kv

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(pipeline_mod, "condense_kv", counting)
        result = adaptive_sum_check(
            (keys, values), (out_k, bad_v), STRONG, seed=5,
            policy=AdaptiveCheckPolicy(escalation_seeds=8),
        )
        assert result.details["adaptive"]["escalated"]
        assert len(calls) == 2  # one per side, escalation included

    @pytest.mark.parametrize("p", [2, 4])
    def test_distributed_escalation_is_globally_consistent(self, p):
        keys, values = sum_workload(2_000, num_keys=100, seed=6)
        out_k, out_v = aggregate_reference(keys, values)
        bad_v = out_v.copy()
        bad_v[0] += 1  # corruption lands on one PE's slice only
        ctx = Context(p)

        def run(comm, k, v, ok, ov):
            return adaptive_sum_check(
                (k, v), (ok, ov), STRONG, seed=7,
                policy=AdaptiveCheckPolicy(escalation_seeds=6), comm=comm,
            )

        outs = ctx.run(
            run,
            per_rank_args=list(
                zip(
                    ctx.split(keys),
                    ctx.split(values),
                    ctx.split(out_k),
                    ctx.split(bad_v),
                )
            ),
        )
        for result in outs:
            assert not result.accepted
            assert result.details["adaptive"]["escalated"]
            assert (
                result.details["adaptive"]["per_seed_accepted"]
                == [False] * 6
            )


class TestCheckedPipelinesWithPolicy:
    def test_reduce_clean_run_stats(self):
        keys, values = sum_workload(2_000, num_keys=100, seed=8)
        ok, ov, result, stats = checked_reduce_by_key(
            None, keys, values, STRONG, seed=9,
            policy=AdaptiveCheckPolicy(),
        )
        assert result.accepted
        assert not stats.escalated
        assert stats.escalation_seconds == 0.0
        assert stats.escalation_seeds == 0
        ref_k, ref_v = aggregate_reference(keys, values)
        assert np.array_equal(ok, ref_k) and np.array_equal(ov, ref_v)

    @pytest.mark.parametrize("p", [1, 2])
    def test_reduce_fault_escalates(self, p):
        keys, values = sum_workload(2_000, num_keys=100, seed=10)
        ctx = Context(p)
        man = get_kv_manipulator("Bitflip")

        def run(comm, k, v):
            injected = man if comm.rank == 0 else None
            _, _, result, stats = checked_reduce_by_key(
                comm, k, v, STRONG, seed=11,
                manipulator=injected,
                manipulator_rng=np.random.default_rng(5),
                policy=AdaptiveCheckPolicy(escalation_seeds=4),
            )
            return result, stats

        outs = ctx.run(
            run, per_rank_args=list(zip(ctx.split(keys), ctx.split(values)))
        )
        for result, stats in outs:
            assert not result.accepted
            assert stats.escalated
            assert stats.escalation_seeds == 4
            assert stats.escalation_seconds > 0.0
            assert (
                result.details["adaptive"]["per_seed_accepted"] == [False] * 4
            )

    def test_sort_fault_escalates(self):
        data = uniform_integers(3_000, seed=12)
        man = get_seq_manipulator("Reset")
        out, result, stats = checked_sort(
            None, data, seed=13, log_h=64,
            manipulator=man, manipulator_rng=np.random.default_rng(6),
            policy=AdaptiveCheckPolicy(escalation_seeds=4),
        )
        assert not result.accepted
        assert stats.escalated and stats.escalation_seeds == 4
        assert result.details["adaptive"]["per_seed_accepted"] == [False] * 4

    def test_sort_clean_run(self):
        data = uniform_integers(3_000, seed=14)
        out, result, stats = checked_sort(
            None, data, seed=15, policy=AdaptiveCheckPolicy()
        )
        assert result.accepted
        assert not stats.escalated
        assert np.array_equal(out, np.sort(data))


class TestAdaptiveKwargsAndDeterministicCompanions:
    def test_non_hashsum_method_rejected_with_policy(self):
        data = uniform_integers(100, seed=40)
        dia = DIA(None, data)
        with pytest.raises(ValueError, match="hash-sum"):
            dia.sort_checked(policy=AdaptiveCheckPolicy(), method="gf64")
        with pytest.raises(ValueError, match="hash-sum"):
            dia.union_checked(
                DIA(None, data), policy=AdaptiveCheckPolicy(),
                method="polynomial",
            )

    def test_polynomial_knobs_rejected_with_policy(self):
        data = uniform_integers(100, seed=41)
        with pytest.raises(ValueError, match="delta"):
            DIA(None, data).sort_checked(
                policy=AdaptiveCheckPolicy(), delta=2.0**-20
            )

    def test_method_hashsum_still_accepted_with_policy(self):
        data = uniform_integers(100, seed=42)
        _, verdict = DIA(None, data).sort_checked(
            policy=AdaptiveCheckPolicy(), method="hashsum"
        )
        assert verdict.accepted

    def test_deterministic_failure_does_not_escalate(self):
        """An unsorted-but-complete output is proven wrong seed-free; the
        policy must not burn T fingerprint lanes confirming it."""
        from repro.dataflow.pipeline import adaptive_sort_check

        data = uniform_integers(500, seed=43)
        unsorted = data.copy()  # correct multiset, wrong order
        if np.array_equal(unsorted, np.sort(unsorted)):
            unsorted[0], unsorted[-1] = unsorted[-1], unsorted[0]
        result = adaptive_sort_check(
            data, unsorted, seed=44, policy=AdaptiveCheckPolicy()
        )
        assert not result.accepted
        assert not result.details["sorted"]
        assert not result.details["primary_accepted"]
        assert not result.details["adaptive"]["escalated"]

    def test_per_seed_reports_fingerprint_lanes_only(self):
        """With a deterministic failure, the escalation lanes still tell
        'the multiset matched' — they must not be masked to all-False."""
        from repro.dataflow.pipeline import adaptive_sort_check

        data = uniform_integers(500, seed=45)
        unsorted = data.copy()
        if np.array_equal(unsorted, np.sort(unsorted)):
            unsorted[0], unsorted[-1] = unsorted[-1], unsorted[0]
        result = adaptive_sort_check(
            data, unsorted, seed=46,
            policy=AdaptiveCheckPolicy(escalate_on="always",
                                       escalation_seeds=3),
        )
        assert not result.accepted  # sortedness failed
        assert result.details["adaptive"]["per_seed_accepted"] == [True] * 3


class TestDIAAdaptive:
    @pytest.mark.parametrize("p", [1, 2])
    def test_sort_checked_policy_clean(self, p):
        data = uniform_integers(2_000, seed=16)
        ctx = Context(p)

        def run(comm, chunk):
            out, verdict = DIA(comm, chunk).sort_checked(
                seed=17,
                policy=AdaptiveCheckPolicy(escalate_on="always",
                                           escalation_seeds=3),
            )
            return out.collect_local(), verdict

        outs = ctx.run(run, per_rank_args=ctx.split(data))
        for _, verdict in outs:
            assert verdict.accepted
            assert verdict.details["adaptive"]["escalated"]
            assert (
                verdict.details["adaptive"]["per_seed_accepted"] == [True] * 3
            )
        assert np.array_equal(
            np.concatenate([o[0] for o in outs]), np.sort(data)
        )

    def test_sort_escalation_matches_independent_check_sort(self):
        data = uniform_integers(1_000, seed=18)
        corrupted = np.sort(data)
        # Swap two *values* so the multiset differs but stays sorted enough
        corrupted = corrupted.copy()
        corrupted[0] = corrupted[0]  # keep sortedness; change multiset:
        corrupted[-1] += 1
        policy = AdaptiveCheckPolicy(escalation_seeds=10)
        # weak fingerprint (log_h=1) → mixed per-seed verdicts
        dia = DIA(None, data)
        out, verdict = dia.sort_checked(
            seed=19, policy=policy, log_h=1, iterations=1
        )
        # clean sort accepts; now drive the adaptive engine directly
        # against the corrupted output for the identity property.
        from repro.dataflow.pipeline import adaptive_permutation_check
        from repro.core.sort_checker import check_globally_sorted

        sortedness = check_globally_sorted(corrupted)
        result = adaptive_permutation_check(
            data, corrupted, seed=19,
            policy=AdaptiveCheckPolicy(escalation_seeds=10,
                                       escalate_on="always"),
            iterations=1, log_h=1,
            extra_ok=sortedness.accepted,
            checker="sort-adaptive",
        )
        expected = [
            check_sort(
                data, corrupted, iterations=1, log_h=1, seed=int(s)
            ).accepted
            for s in policy.resolve_seeds(19)
        ]
        assert result.details["adaptive"]["per_seed_accepted"] == expected
        assert any(expected) and not all(expected)

    def test_union_merge_checked_policy(self):
        a = np.sort(uniform_integers(800, seed=20))
        b = np.sort(uniform_integers(600, seed=21))
        da, db = DIA(None, a), DIA(None, b)
        policy = AdaptiveCheckPolicy(escalate_on="always", escalation_seeds=2)
        _, uv = da.union_checked(db, seed=22, policy=policy)
        _, mv = da.merge_checked(db, seed=22, policy=policy)
        for verdict in (uv, mv):
            assert verdict.accepted
            assert verdict.details["adaptive"]["per_seed_accepted"] == [True] * 2
        assert mv.details["sorted"]

    def test_zip_checked_policy_escalates_on_corruption(self):
        a = np.arange(500, dtype=np.int64)
        b = np.arange(500, dtype=np.int64) * 2
        # Sequential zip is the identity; corrupt via the adaptive engine.
        bad_first = a.copy()
        bad_first[3] += 1
        result = adaptive_zip_check(
            a, b, bad_first, b, seed=23,
            policy=AdaptiveCheckPolicy(escalation_seeds=5),
        )
        assert not result.accepted
        assert result.details["adaptive"]["escalated"]
        expected = [
            check_zip(a, b, bad_first, b, seed=int(s)).accepted
            for s in AdaptiveCheckPolicy(escalation_seeds=5).resolve_seeds(23)
        ]
        assert result.details["adaptive"]["per_seed_accepted"] == expected

    def test_zip_checked_policy_clean(self):
        a = np.arange(300, dtype=np.int64)
        b = np.arange(300, dtype=np.int64) + 7
        dia_a, dia_b = DIA(None, a), DIA(None, b)
        _, verdict = dia_a.zip_checked(
            dia_b, seed=24, policy=AdaptiveCheckPolicy()
        )
        assert verdict.accepted
        assert not verdict.details["adaptive"]["escalated"]

    def test_reduce_by_key_checked_policy(self):
        keys, values = sum_workload(1_500, num_keys=80, seed=25)
        kv = DIA(None, keys).with_values(values)
        out, verdict = kv.reduce_by_key_checked(
            STRONG, seed=26,
            policy=AdaptiveCheckPolicy(escalate_on="always",
                                       escalation_seeds=4),
        )
        assert verdict.accepted
        assert verdict.details["adaptive"]["per_seed_accepted"] == [True] * 4

    @pytest.mark.parametrize("p", [2])
    def test_group_by_key_checked_policy(self, p):
        keys, values = sum_workload(1_500, num_keys=80, seed=27)
        ctx = Context(p)

        def run(comm, k, v):
            kv = DIA(comm, k).with_values(v)
            (uk, groups), verdict = kv.group_by_key_checked(
                seed=28,
                policy=AdaptiveCheckPolicy(escalate_on="always",
                                           escalation_seeds=3),
            )
            return verdict

        outs = ctx.run(
            run, per_rank_args=list(zip(ctx.split(keys), ctx.split(values)))
        )
        for verdict in outs:
            assert verdict.accepted
            assert verdict.details["placement_ok"]
            assert (
                verdict.details["adaptive"]["per_seed_accepted"] == [True] * 3
            )

    def test_groupby_escalation_matches_multiseed_checker(self):
        from repro.core.groupby_checker import (
            check_groupby_redistribution,
            default_partitioner,
        )

        keys, values = sum_workload(1_000, num_keys=60, seed=29)
        part = default_partitioner(1)
        bad_values = values.copy()
        bad_values[0] += 1
        policy = AdaptiveCheckPolicy(escalation_seeds=8, escalate_on="always")
        kv = DIA(None, keys).with_values(values)
        # Sequential group-by keeps records in place, so corrupt post via
        # the engine-level call for the identity property:
        from repro.core.groupby_checker import encode_records
        from repro.dataflow.pipeline import adaptive_permutation_check

        result = adaptive_permutation_check(
            encode_records(keys, values),
            encode_records(keys, bad_values),
            seed=30, policy=policy, iterations=1, log_h=1,
            extra_ok=True, checker="groupby-redistribution-adaptive",
            seed_path=("groupby-perm",),
        )
        expected = [
            check_groupby_redistribution(
                (keys, values), (keys, bad_values), part,
                iterations=1, log_h=1, seed=int(s),
            ).accepted
            for s in policy.resolve_seeds(30)
        ]
        assert result.details["adaptive"]["per_seed_accepted"] == expected
        assert any(expected) and not all(expected)

"""Tests for the mini-Thrill dataflow operations."""

import numpy as np
import pytest

from repro.comm.context import Context, SPMDError
from repro.core.groupby_checker import default_partitioner
from repro.dataflow.exchange import exchange_by_destination, global_offset
from repro.dataflow.ops.group_by_key import group_by_key
from repro.dataflow.ops.join import hash_join
from repro.dataflow.ops.merge import merge_sorted
from repro.dataflow.ops.reduce_by_key import local_aggregate, reduce_by_key
from repro.dataflow.ops.sort import sample_sort
from repro.dataflow.ops.union import union_arrays
from repro.dataflow.ops.zip_op import zip_arrays
from repro.workloads.kv import aggregate_reference, sum_workload


class TestExchange:
    def test_routing(self):
        ctx = Context(3)

        def run(comm):
            keys = np.arange(9, dtype=np.uint64) + comm.rank * 9
            dests = (keys % np.uint64(3)).astype(np.int64)
            (received,) = exchange_by_destination(comm, dests, keys)
            return received

        out = ctx.run(run)
        for rank, received in enumerate(out):
            assert np.all(received % 3 == rank)
        total = np.sort(np.concatenate(out))
        assert np.array_equal(total, np.arange(27, dtype=np.uint64))

    def test_multiple_columns_stay_aligned(self):
        ctx = Context(2)

        def run(comm):
            keys = np.arange(10, dtype=np.uint64)
            vals = keys.astype(np.int64) * 7
            dests = (keys % np.uint64(2)).astype(np.int64)
            k, v = exchange_by_destination(comm, dests, keys, vals)
            return bool(np.all(v == k.astype(np.int64) * 7))

        assert ctx.run(run) == [True, True]

    def test_out_of_range_destination_rejected(self):
        ctx = Context(2)
        with pytest.raises(SPMDError):
            ctx.run(
                lambda comm: exchange_by_destination(
                    comm,
                    np.array([5], dtype=np.int64),
                    np.array([1], dtype=np.uint64),
                )
            )

    def test_global_offset(self):
        ctx = Context(4)
        out = ctx.run(lambda comm: global_offset(comm, comm.rank + 1))
        assert out == [0, 1, 3, 6]

    def test_sequential_identity(self):
        keys = np.arange(5, dtype=np.uint64)
        (out,) = exchange_by_destination(None, np.zeros(5, dtype=np.int64), keys)
        assert np.array_equal(out, keys)

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_empty_locals(self, p):
        """PEs with nothing to send must still complete the collective."""
        ctx = Context(p)

        def run(comm):
            k, v = exchange_by_destination(
                comm,
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.uint64),
                np.zeros(0, dtype=np.float64),
            )
            return k.dtype, k.size, v.dtype, v.size

        outs = ctx.run(run)
        assert outs == [(np.dtype(np.uint64), 0, np.dtype(np.float64), 0)] * p

    def test_some_pes_empty(self):
        ctx = Context(2)

        def run(comm):
            if comm.rank == 0:
                keys = np.arange(6, dtype=np.uint64)
                dests = (keys % np.uint64(2)).astype(np.int64)
            else:
                keys = np.zeros(0, dtype=np.uint64)
                dests = np.zeros(0, dtype=np.int64)
            (received,) = exchange_by_destination(comm, dests, keys)
            return received.tolist()

        outs = ctx.run(run)
        assert outs == [[0, 2, 4], [1, 3, 5]]

    @pytest.mark.parametrize("p", [1, 2])
    def test_zero_columns(self, p):
        """Destinations without payload columns: a pure routing no-op."""
        ctx = Context(p)
        outs = ctx.run(
            lambda comm: exchange_by_destination(
                comm, np.zeros(3, dtype=np.int64)
            )
        )
        assert outs == [()] * p
        assert exchange_by_destination(None, np.zeros(3, dtype=np.int64)) == ()

    def test_single_rank_comm_is_identity(self):
        ctx = Context(1)

        def run(comm):
            keys = np.arange(4, dtype=np.uint64)
            vals = keys.astype(np.int64) * 3
            k, v = exchange_by_destination(
                comm, np.zeros(4, dtype=np.int64), keys, vals
            )
            return np.array_equal(k, keys) and np.array_equal(v, vals)

        assert ctx.run(run) == [True]

    def test_list_columns_accepted_everywhere(self):
        """Regression: list columns worked sequentially but crashed the
        distributed fancy-indexing path before coercion was hoisted."""
        (seq,) = exchange_by_destination(None, [0, 0], [5, 6])
        assert seq.tolist() == [5, 6]
        ctx = Context(1)
        outs = ctx.run(
            lambda comm: exchange_by_destination(comm, [0, 0], [5, 6])[
                0
            ].tolist()
        )
        assert outs == [[5, 6]]

    def test_misaligned_column_rejected(self):
        """Regression: a short/long column used to silently drop rows on
        the distributed path instead of failing loudly."""
        with pytest.raises(ValueError, match="rows"):
            exchange_by_destination(
                None, np.zeros(3, dtype=np.int64), np.arange(2)
            )
        ctx = Context(2)
        with pytest.raises(SPMDError):
            ctx.run(
                lambda comm: exchange_by_destination(
                    comm,
                    np.zeros(2, dtype=np.int64),
                    np.arange(5, dtype=np.uint64),
                )
            )


class TestLocalAggregate:
    def test_matches_reference(self, kv_small):
        keys, values = kv_small
        lk, lv = local_aggregate(keys, values)
        rk, rv = aggregate_reference(keys, values)
        assert np.array_equal(lk, rk) and np.array_equal(lv, rv)

    def test_empty(self):
        k, v = local_aggregate(
            np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64)
        )
        assert k.size == 0 and v.size == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            local_aggregate(np.array([1], dtype=np.uint64), np.array([1, 2]))


class TestReduceByKey:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_matches_reference(self, p, kv_small):
        keys, values = kv_small
        ref_k, ref_v = aggregate_reference(keys, values)
        ctx = Context(p)
        outs = ctx.run(
            lambda comm, k, v: reduce_by_key(comm, k, v),
            per_rank_args=list(zip(ctx.split(keys), ctx.split(values))),
        )
        got_k = np.concatenate([o[0] for o in outs])
        got_v = np.concatenate([o[1] for o in outs])
        order = np.argsort(got_k)
        assert np.array_equal(got_k[order], ref_k)
        assert np.array_equal(got_v[order], ref_v)

    def test_keys_are_disjoint_across_pes(self, kv_small):
        keys, values = kv_small
        ctx = Context(4)
        outs = ctx.run(
            lambda comm, k, v: reduce_by_key(comm, k, v),
            per_rank_args=list(zip(ctx.split(keys), ctx.split(values))),
        )
        all_keys = np.concatenate([o[0] for o in outs])
        assert len(np.unique(all_keys)) == all_keys.size


class TestGroupByKey:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_groups_complete(self, p, kv_small):
        keys, values = kv_small
        ctx = Context(p)
        outs = ctx.run(
            lambda comm, k, v: group_by_key(comm, k, v),
            per_rank_args=list(zip(ctx.split(keys), ctx.split(values))),
        )
        total = 0
        seen_keys = []
        for uk, groups in outs:
            seen_keys.extend(uk.tolist())
            total += sum(g.size for g in groups)
        assert total == keys.size
        assert len(seen_keys) == len(set(seen_keys))  # each key at one PE

    def test_group_sums_match_reference(self, kv_small):
        keys, values = kv_small
        ref_k, ref_v = aggregate_reference(keys, values)
        ref = dict(zip(ref_k.tolist(), ref_v.tolist()))
        ctx = Context(4)
        outs = ctx.run(
            lambda comm, k, v: group_by_key(comm, k, v),
            per_rank_args=list(zip(ctx.split(keys), ctx.split(values))),
        )
        for uk, groups in outs:
            for key, group in zip(uk.tolist(), groups):
                assert int(group.sum()) == ref[key]


class TestSampleSort:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_sorts(self, p):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 10**7, 5_000).astype(np.uint64)
        ctx = Context(p)
        outs = ctx.run(
            lambda comm, c: sample_sort(comm, c), per_rank_args=ctx.split(data)
        )
        merged = np.concatenate(outs)
        assert np.array_equal(merged, np.sort(data))

    def test_skewed_input(self):
        data = np.concatenate(
            [np.zeros(3_000, dtype=np.uint64), np.arange(100, dtype=np.uint64)]
        )
        ctx = Context(4)
        outs = ctx.run(
            lambda comm, c: sample_sort(comm, c), per_rank_args=ctx.split(data)
        )
        assert np.array_equal(np.concatenate(outs), np.sort(data))

    def test_empty_pe(self):
        ctx = Context(4)
        chunks = [
            np.arange(100, dtype=np.uint64),
            np.zeros(0, dtype=np.uint64),
            np.arange(50, dtype=np.uint64),
            np.zeros(0, dtype=np.uint64),
        ]
        outs = ctx.run(lambda comm, c: sample_sort(comm, c), per_rank_args=chunks)
        expected = np.sort(np.concatenate(chunks))
        assert np.array_equal(np.concatenate(outs), expected)


class TestMergeZipUnionJoin:
    def test_merge_sorted(self):
        rng = np.random.default_rng(2)
        a = np.sort(rng.integers(0, 1000, 300).astype(np.uint64))
        b = np.sort(rng.integers(0, 1000, 200).astype(np.uint64))
        ctx = Context(2)
        outs = ctx.run(
            lambda comm, x, y: merge_sorted(comm, x, y),
            per_rank_args=list(zip(ctx.split(a), ctx.split(b))),
        )
        merged = np.concatenate(outs)
        assert np.array_equal(merged, np.sort(np.concatenate([a, b])))

    def test_zip_rejects_unequal_lengths(self):
        ctx = Context(2)
        with pytest.raises(SPMDError):
            ctx.run(
                lambda comm: zip_arrays(
                    comm,
                    np.arange(comm.rank + 1, dtype=np.uint64),
                    np.arange(5, dtype=np.uint64),
                )
            )

    def test_union_is_local_concat(self):
        out = union_arrays(None, np.array([1, 2]), np.array([3]))
        assert out.tolist() == [1, 2, 3]

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_hash_join_row_count(self, p):
        rk = np.array([1, 2, 2, 3], dtype=np.uint64)
        rv = np.array([10, 20, 21, 30], dtype=np.int64)
        sk = np.array([2, 2, 3, 9], dtype=np.uint64)
        sv = np.array([200, 201, 300, 900], dtype=np.int64)
        ctx = Context(p)
        outs = ctx.run(
            lambda comm, a, b, c, d: hash_join(comm, (a, b), (c, d)).keys.size,
            per_rank_args=list(
                zip(ctx.split(rk), ctx.split(rv), ctx.split(sk), ctx.split(sv))
            ),
        )
        # key 2: 2x2 = 4 pairs; key 3: 1x1 = 1 pair.
        assert sum(outs) == 5

    def test_hash_join_pairs_correct(self):
        rk = np.array([7, 7], dtype=np.uint64)
        rv = np.array([1, 2], dtype=np.int64)
        sk = np.array([7], dtype=np.uint64)
        sv = np.array([9], dtype=np.int64)
        jx = hash_join(None, (rk, rv), (sk, sv))
        got = sorted(zip(jx.keys.tolist(), jx.r_values.tolist(), jx.s_values.tolist()))
        assert got == [(7, 1, 9), (7, 2, 9)]


class TestAggregatesAgainstNumpy:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_median_by_key_matches_numpy(self, p):
        from repro.dataflow.ops.aggregates import median_by_key

        keys, values = sum_workload(600, num_keys=20, seed=8)
        ctx = Context(p)
        outs = ctx.run(
            lambda comm, k, v: median_by_key(comm, k, v),
            per_rank_args=list(zip(ctx.split(keys), ctx.split(values))),
        )
        res = outs[0]
        for key, num, den in zip(
            res.keys.tolist(), res.numerators.tolist(), res.denominators.tolist()
        ):
            expected = float(np.median(values[keys == key]))
            assert num / den == pytest.approx(expected)

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_min_max_by_key_match_numpy(self, p):
        from repro.dataflow.ops.aggregates import max_by_key, min_by_key

        keys, values = sum_workload(600, num_keys=20, seed=9)
        ctx = Context(p)
        mins = ctx.run(
            lambda comm, k, v: min_by_key(comm, k, v),
            per_rank_args=list(zip(ctx.split(keys), ctx.split(values))),
        )[0]
        maxs = ctx.run(
            lambda comm, k, v: max_by_key(comm, k, v),
            per_rank_args=list(zip(ctx.split(keys), ctx.split(values))),
        )[0]
        for key, mn in zip(mins.keys.tolist(), mins.values.tolist()):
            assert mn == values[keys == key].min()
        for key, mx in zip(maxs.keys.tolist(), maxs.values.tolist()):
            assert mx == values[keys == key].max()

    def test_min_owner_actually_holds_minimum(self):
        from repro.dataflow.ops.aggregates import min_by_key

        keys, values = sum_workload(600, num_keys=20, seed=10)
        ctx = Context(4)
        key_chunks = ctx.split(keys)
        val_chunks = ctx.split(values)
        res = ctx.run(
            lambda comm, k, v: min_by_key(comm, k, v),
            per_rank_args=list(zip(key_chunks, val_chunks)),
        )[0]
        for key, mn, owner in zip(
            res.keys.tolist(), res.values.tolist(), res.owners.tolist()
        ):
            k_chunk = key_chunks[owner]
            v_chunk = val_chunks[owner]
            assert mn in v_chunk[k_chunk == key]

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_average_by_key_exact_fractions(self, p):
        from repro.dataflow.ops.aggregates import average_by_key
        from math import gcd

        keys, values = sum_workload(600, num_keys=20, seed=11)
        ctx = Context(p)
        outs = ctx.run(
            lambda comm, k, v: average_by_key(comm, k, v),
            per_rank_args=list(zip(ctx.split(keys), ctx.split(values))),
        )
        for res in outs:
            for key, num, den, count in zip(
                res.keys.tolist(),
                res.numerators.tolist(),
                res.denominators.tolist(),
                res.counts.tolist(),
            ):
                mask = keys == key
                assert count == int(mask.sum())
                assert num / den == pytest.approx(values[mask].mean())
                assert gcd(abs(num), den) == 1  # lowest terms

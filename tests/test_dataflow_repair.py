"""Tests for window repair and quarantine (``repro.dataflow.repair``).

Properties under test: bounded retry with per-attempt seed escalation,
partial (localized-slice) patching that re-settles bit-identical to a
clean run, escalation to full recomputation when localization misleads,
permanent quarantine after the retry budget — and the streaming layer's
integration: a healed window replaces its output/verdict in place, a
quarantined window never stalls later windows, and the run's
:class:`CheckedRunStats` meter the whole trail.
"""

import numpy as np
import pytest

from repro.comm.context import Context
from repro.core.localize import localize_fault
from repro.core.params import SumCheckConfig
from repro.dataflow.pipeline import CheckedRunStats
from repro.dataflow.repair import (
    QuarantinedWindow,
    RepairPolicy,
    repair_reduce_window,
)
from repro.dataflow.streaming import StreamingKeyValueDIA
from repro.workloads.kv import aggregate_reference, sum_workload

CONFIG = SumCheckConfig.parse("8x16 m15")


def kv_chunks(keys, values, size):
    return [
        (keys[i : i + size], values[i : i + size])
        for i in range(0, keys.size, size)
    ]


class TestRepairPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RepairPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RepairPolicy(initial_seeds=0)
        with pytest.raises(ValueError):
            RepairPolicy(seed_cap=0)
        with pytest.raises(ValueError):
            RepairPolicy(seed_growth=0)
        with pytest.raises(ValueError):
            RepairPolicy(localization_seeds=0)

    def test_seed_escalation_capped(self):
        policy = RepairPolicy(
            max_attempts=5, initial_seeds=2, seed_growth=2, seed_cap=16
        )
        assert [policy.num_seeds(a) for a in range(5)] == [2, 4, 8, 16, 16]

    def test_attempt_seed_roots_fresh_and_distinct(self):
        policy = RepairPolicy()
        a0 = policy.attempt_seed_roots(99, 0)
        a1 = policy.attempt_seed_roots(99, 1)
        assert a0.size == policy.num_seeds(0)
        assert np.unique(a0).size == a0.size
        assert not np.intersect1d(a0, a1).size  # attempts never share seeds
        assert np.array_equal(a0, policy.attempt_seed_roots(99, 0))


class TestRepairReduceWindow:
    """Sequential (comm=None) repair of a single corrupted window."""

    def _window(self, seed=3):
        keys, values = sum_workload(2000, num_keys=90, seed=seed)
        clean = aggregate_reference(keys, values)
        return keys, values, clean

    def _corrupted(self, clean, at=30, delta=7):
        out_k, out_v = clean
        bad_v = out_v.copy()
        bad_v[at] += delta
        return out_k, bad_v

    def test_partial_patch_heals_bit_identical(self):
        keys, values, clean = self._window()
        bad = self._corrupted(clean)
        report = localize_fault((keys, values), bad, CONFIG, seeds=2)
        assert report.localized
        outcome = repair_reduce_window(
            None,
            4,
            window_seed=17,
            config=CONFIG,
            reexecute=lambda w, ranges: [(keys, values)],
            old_output=bad,
            policy=RepairPolicy(),
            report=report,
        )
        assert outcome.healed
        assert outcome.attempts == 1
        assert outcome.window == 4
        assert outcome.verdicts[-1].accepted
        assert outcome.verdicts[0].details["partial"] is True
        # The patched-and-resettled window equals the clean run exactly.
        assert np.array_equal(outcome.output[0], clean[0])
        assert np.array_equal(outcome.output[1], clean[1])

    def test_reexecute_sees_window_id_and_ranges(self):
        keys, values, clean = self._window(seed=5)
        bad = self._corrupted(clean, at=11)
        report = localize_fault((keys, values), bad, CONFIG, seeds=2)
        seen = []

        def reexecute(window_id, key_ranges):
            seen.append((window_id, list(key_ranges)))
            return [(keys, values)]

        repair_reduce_window(
            None, 8, 23, CONFIG, reexecute, bad, RepairPolicy(), report
        )
        assert seen[0][0] == 8
        assert seen[0][1] == report.key_ranges

    def test_no_report_recomputes_fully(self):
        keys, values, clean = self._window(seed=7)
        bad = self._corrupted(clean, at=2)
        outcome = repair_reduce_window(
            None,
            0,
            window_seed=9,
            config=CONFIG,
            reexecute=lambda w, ranges: [(keys, values)],
            old_output=bad,
            policy=RepairPolicy(),
            report=None,
        )
        assert outcome.healed
        assert outcome.verdicts[0].details["partial"] is False
        assert np.array_equal(outcome.output[1], clean[1])

    def test_misleading_report_falls_back_to_full_recompute(self):
        """Ranges that miss the fault fail the re-settle; the final
        attempt recomputes the window outright and heals."""
        keys, values, clean = self._window(seed=11)
        bad = self._corrupted(clean, at=50)
        wrong_key = int(clean[0][0])
        fake = localize_fault((keys, values), bad, CONFIG, seeds=2)
        fake.key_ranges = [(wrong_key, wrong_key)]  # misses index 50
        policy = RepairPolicy(max_attempts=2)
        outcome = repair_reduce_window(
            None,
            1,
            window_seed=31,
            config=CONFIG,
            reexecute=lambda w, ranges: [(keys, values)],
            old_output=bad,
            policy=policy,
            report=fake,
        )
        assert outcome.healed
        assert outcome.attempts == 2
        assert [v.accepted for v in outcome.verdicts] == [False, True]
        assert outcome.verdicts[0].details["partial"] is True
        assert outcome.verdicts[1].details["partial"] is False
        assert np.array_equal(outcome.output[1], clean[1])

    def test_retry_exhaustion_quarantines(self, monkeypatch):
        """A reduce that corrupts every re-execution exhausts the budget."""
        import repro.dataflow.repair as repair_mod

        keys, values, clean = self._window(seed=13)
        bad = self._corrupted(clean, at=8)
        real_reduce = repair_mod.reduce_by_key

        def lying_reduce(comm, k, v, partitioner=None):
            out_k, out_v = real_reduce(comm, k, v, partitioner)
            out_v = out_v.copy()
            out_v[0] += 1
            return out_k, out_v

        monkeypatch.setattr(repair_mod, "reduce_by_key", lying_reduce)
        policy = RepairPolicy(max_attempts=3)
        outcome = repair_reduce_window(
            None,
            6,
            window_seed=37,
            config=CONFIG,
            reexecute=lambda w, ranges: [(keys, values)],
            old_output=bad,
            policy=policy,
            report=None,
        )
        assert not outcome.healed
        assert outcome.attempts == 3
        assert outcome.output is None
        assert all(not v.accepted for v in outcome.verdicts)
        # Each attempt was judged under its escalated seed count.
        assert [v.details["num_seeds"] for v in outcome.verdicts] == [
            policy.num_seeds(a) for a in range(3)
        ]
        q = outcome.quarantine()
        assert isinstance(q, QuarantinedWindow)
        assert q.window == 6
        assert q.attempts == 3
        assert len(q.verdicts) == 3


class TestStreamingRepair:
    """reduce_by_key_checked with a reexecute callback: heal in place,
    or quarantine without stalling later windows."""

    def _stream(self, seed=11):
        keys, values = sum_workload(2000, num_keys=50, seed=seed)
        return keys, values, kv_chunks(keys, values, 250)

    def test_rejected_window_heals_in_place(self, monkeypatch):
        import repro.dataflow.streaming as streaming_mod

        keys, values, chunks = self._stream()
        clean = StreamingKeyValueDIA.from_chunks(
            None, chunks
        ).reduce_by_key_checked(CONFIG, seed=13, chunks_per_window=2)
        assert clean.accepted

        real_reduce = streaming_mod.reduce_by_key
        calls = {"n": 0}

        def lying_reduce(comm, k, v, partitioner=None):
            out_k, out_v = real_reduce(comm, k, v, partitioner)
            calls["n"] += 1
            if calls["n"] == 2 and out_v.size:  # corrupt window 1 only
                out_v = out_v.copy()
                out_v[0] += 1
            return out_k, out_v

        monkeypatch.setattr(streaming_mod, "reduce_by_key", lying_reduce)
        run = StreamingKeyValueDIA.from_chunks(
            None, chunks
        ).reduce_by_key_checked(
            CONFIG,
            seed=13,
            chunks_per_window=2,
            reexecute=lambda w, ranges: kv_chunks(keys, values, 250)[
                2 * w : 2 * (w + 1)
            ],
        )
        assert run.accepted  # healed: every final verdict accepts
        assert not run.quarantined
        for w, (out_k, out_v) in enumerate(run.outputs):
            assert np.array_equal(out_k, clean.outputs[w][0])
            assert np.array_equal(out_v, clean.outputs[w][1])
        assert run.stats.repaired_windows == 1
        assert run.stats.quarantined_windows == 0
        assert run.stats.localized
        assert run.stats.localization_seconds > 0.0

    def test_window_history_records_repair_trail(self, monkeypatch):
        import repro.dataflow.streaming as streaming_mod

        keys, values, chunks = self._stream(seed=17)
        real_reduce = streaming_mod.reduce_by_key
        calls = {"n": 0}

        def lying_reduce(comm, k, v, partitioner=None):
            out_k, out_v = real_reduce(comm, k, v, partitioner)
            calls["n"] += 1
            if calls["n"] == 2 and out_v.size:
                out_v = out_v.copy()
                out_v[0] += 1
            return out_k, out_v

        monkeypatch.setattr(streaming_mod, "reduce_by_key", lying_reduce)
        policy = RepairPolicy(localization_seeds=3)
        run = StreamingKeyValueDIA.from_chunks(
            None, chunks
        ).reduce_by_key_checked(
            CONFIG,
            seed=19,
            chunks_per_window=2,
            reexecute=lambda w, ranges: kv_chunks(keys, values, 250)[
                2 * w : 2 * (w + 1)
            ],
            repair=policy,
        )
        assert len(run.window_history) == len(run.verdicts) == 4
        healthy = [run.window_history[w] for w in (0, 2, 3)]
        assert all(
            rec.accepted and not rec.repaired and rec.report is None
            for rec in healthy
        )
        rec = run.window_history[1]
        assert rec.window == 1
        assert rec.repaired and rec.accepted and not rec.quarantined
        assert rec.repair_attempts == 1
        assert rec.report is not None and rec.report.localized
        assert rec.report.windows == [1]
        # seeds_used: primary + localization lanes + repair roots, in order.
        expected = 1 + policy.localization_seeds + policy.num_seeds(0)
        assert len(rec.seeds_used) == expected
        assert len(set(rec.seeds_used)) == expected

    def test_quarantine_does_not_stall_later_windows(self, monkeypatch):
        import repro.dataflow.repair as repair_mod
        import repro.dataflow.streaming as streaming_mod

        keys, values, chunks = self._stream(seed=23)
        real_reduce = streaming_mod.reduce_by_key
        calls = {"n": 0}

        def lying_stream_reduce(comm, k, v, partitioner=None):
            out_k, out_v = real_reduce(comm, k, v, partitioner)
            calls["n"] += 1
            if calls["n"] == 2 and out_v.size:
                out_v = out_v.copy()
                out_v[0] += 1
            return out_k, out_v

        def lying_repair_reduce(comm, k, v, partitioner=None):
            out_k, out_v = real_reduce(comm, k, v, partitioner)
            out_v = out_v.copy()
            out_v[0] += 1  # repair re-execution is just as broken
            return out_k, out_v

        monkeypatch.setattr(
            streaming_mod, "reduce_by_key", lying_stream_reduce
        )
        monkeypatch.setattr(repair_mod, "reduce_by_key", lying_repair_reduce)
        policy = RepairPolicy(max_attempts=2)
        run = StreamingKeyValueDIA.from_chunks(
            None, chunks
        ).reduce_by_key_checked(
            CONFIG,
            seed=29,
            chunks_per_window=2,
            reexecute=lambda w, ranges: kv_chunks(keys, values, 250)[
                2 * w : 2 * (w + 1)
            ],
            repair=policy,
        )
        assert not run.accepted
        # Every window settled; only window 1 stayed rejected.
        assert [v.accepted for v in run.verdicts] == [True, False, True, True]
        assert len(run.quarantined) == 1
        q = run.quarantined[0]
        assert q.window == 1
        assert q.attempts == 2
        assert run.window_history[1].quarantined
        assert not run.window_history[1].repaired
        assert run.stats.quarantined_windows == 1
        assert run.stats.repaired_windows == 0

    @pytest.mark.parametrize("p", [2, 3])
    def test_distributed_heal_matches_clean_run(self, p):
        keys, values = sum_workload(3000, num_keys=60, seed=31)
        shares = list(
            zip(np.array_split(keys, p), np.array_split(values, p))
        )

        def clean_job(comm, k, v):
            run = StreamingKeyValueDIA.from_chunks(
                comm, kv_chunks(k, v, 250)
            ).reduce_by_key_checked(CONFIG, seed=5, chunks_per_window=2)
            assert run.accepted
            return run.outputs

        clean_outputs = Context(p).run(clean_job, per_rank_args=shares)

        # Patch once, outside the SPMD job: every rank's thread shares
        # the module global, so per-thread patch/restore would race.
        import repro.dataflow.streaming as streaming_mod

        real_reduce = streaming_mod.reduce_by_key
        counts: dict[int, int] = {}

        def lying_reduce(c, kk, vv, partitioner=None):
            out_k, out_v = real_reduce(c, kk, vv, partitioner)
            n = counts.get(c.rank, 0) + 1
            counts[c.rank] = n
            if n == 2 and out_v.size:  # window 1, every rank
                out_v = out_v.copy()
                out_v[0] += 1
            return out_k, out_v

        def faulty_job(comm, k, v):
            chunks = kv_chunks(k, v, 250)
            run = StreamingKeyValueDIA.from_chunks(
                comm, chunks
            ).reduce_by_key_checked(
                CONFIG,
                seed=5,
                chunks_per_window=2,
                reexecute=lambda w, ranges: chunks[2 * w : 2 * (w + 1)],
            )
            assert run.accepted
            assert run.stats.repaired_windows == 1
            return run.outputs

        streaming_mod.reduce_by_key = lying_reduce
        try:
            healed_outputs = Context(p).run(faulty_job, per_rank_args=shares)
        finally:
            streaming_mod.reduce_by_key = real_reduce
        for rank in range(p):
            for (ck, cv), (hk, hv) in zip(
                clean_outputs[rank], healed_outputs[rank]
            ):
                assert np.array_equal(ck, hk)
                assert np.array_equal(cv, hv)


class TestRepairStats:
    def test_merge_accumulates_repair_fields(self):
        a = CheckedRunStats(
            operation_seconds=1.0,
            checker_seconds=0.5,
            windows=1,
            localized=True,
            bisection_rounds=7,
            localization_seconds=0.25,
            repaired_windows=1,
        )
        b = CheckedRunStats(
            operation_seconds=2.0,
            checker_seconds=0.5,
            windows=1,
            bisection_rounds=3,
            localization_seconds=0.05,
            quarantined_windows=1,
        )
        m = a.merge(b)
        assert m.localized  # sticky across windows
        assert m.bisection_rounds == 10
        assert m.localization_seconds == pytest.approx(0.3)
        assert m.repaired_windows == 1
        assert m.quarantined_windows == 1
        assert m.windows == 2

    def test_defaults_are_zero(self):
        s = CheckedRunStats(0.0, 0.0)
        assert not s.localized
        assert s.bisection_rounds == 0
        assert s.localization_seconds == 0.0
        assert s.repaired_windows == 0
        assert s.quarantined_windows == 0

"""Tests for the streaming DIA layer: windowed checked operations.

Covers chunked sources (``from_chunks`` / ``from_generator``), windowed
settlement (one settle per window, PEs with ragged chunk counts stay in
lockstep), adaptive escalation over the window's condensed aggregates,
per-window stats accumulation, and the batched exchange-offset helpers.
"""

import numpy as np
import pytest

from repro.comm.context import Context
from repro.core.params import SumCheckConfig
from repro.dataflow.exchange import Exchange, global_offsets
from repro.dataflow.ops.reduce_by_key import reduce_by_key
from repro.dataflow.ops.zip_op import zip_arrays
from repro.dataflow.pipeline import AdaptiveCheckPolicy, CheckedRunStats
from repro.dataflow.streaming import StreamingDIA, StreamingKeyValueDIA
from repro.workloads.kv import aggregate_reference, sum_workload

CONFIG = SumCheckConfig.parse("8x16 m15")


def kv_chunks(keys, values, size):
    return [
        (keys[i : i + size], values[i : i + size])
        for i in range(0, keys.size, size)
    ]


class TestStreamingReduceByKey:
    def test_sequential_windows_match_batch_reduce(self):
        keys, values = sum_workload(3_000, num_keys=80, seed=1)
        run = StreamingKeyValueDIA.from_chunks(
            None, kv_chunks(keys, values, 400)
        ).reduce_by_key_checked(CONFIG, seed=3, chunks_per_window=2)
        assert run.accepted
        assert run.stats.windows == 4  # ceil(8 chunks / 2)
        assert run.stats.elements_fed == keys.size
        assert len(run.outputs) == len(run.verdicts) == 4
        # Window w's output is the exact reduce of window w's elements.
        for w, (out_k, out_v) in enumerate(run.outputs):
            lo, hi = w * 800, (w + 1) * 800
            ek, ev = aggregate_reference(keys[lo:hi], values[lo:hi])
            assert np.array_equal(out_k, ek)
            assert np.array_equal(out_v, ev)

    def test_from_generator_is_lazy(self):
        pulled = []

        def gen():
            for i in range(4):
                pulled.append(i)
                yield (
                    np.full(10, i, dtype=np.uint64),
                    np.ones(10, dtype=np.int64),
                )

        dia = StreamingKeyValueDIA.from_generator(None, gen)
        assert pulled == []  # nothing materialized up front
        run = dia.reduce_by_key_checked(CONFIG, chunks_per_window=2)
        assert pulled == [0, 1, 2, 3]
        assert run.accepted and run.stats.windows == 2

    @pytest.mark.parametrize("p", [2, 4])
    def test_distributed_windows(self, p):
        keys, values = sum_workload(4_000, num_keys=120, seed=5)
        ctx = Context(p)

        def job(comm, k, v):
            run = StreamingKeyValueDIA.from_chunks(
                comm, kv_chunks(k, v, 300)
            ).reduce_by_key_checked(CONFIG, seed=7, chunks_per_window=2)
            return run.accepted, run.stats.windows, run.outputs

        outs = ctx.run(
            job, per_rank_args=list(zip(ctx.split(keys), ctx.split(values)))
        )
        assert all(o[0] for o in outs)
        # Same window count everywhere (windows are a global construct).
        assert len({o[1] for o in outs}) == 1

    def test_ragged_chunk_counts_stay_in_lockstep(self):
        """A PE whose stream dries up early keeps joining settles."""
        keys, values = sum_workload(1_200, num_keys=40, seed=9)
        ctx = Context(2)

        def job(comm, k, v):
            # 6 chunks on PE 0 vs 2 on PE 1 → 3 global windows; PE 1 joins
            # windows 2 and 3 with empty feeds.
            size = 100 if comm.rank == 0 else 400
            run = StreamingKeyValueDIA.from_chunks(
                comm, kv_chunks(k, v, size)
            ).reduce_by_key_checked(CONFIG, seed=1, chunks_per_window=2)
            return run.accepted, run.stats.windows

        outs = ctx.run(
            job, per_rank_args=list(zip(ctx.split(keys), ctx.split(values)))
        )
        assert outs == [(True, 3), (True, 3)]

    def test_fault_confined_to_its_window(self):
        """A corrupted window rejects; clean windows still accept."""
        keys, values = sum_workload(2_000, num_keys=50, seed=11)
        chunks = kv_chunks(keys, values, 250)

        class LyingDIA(StreamingKeyValueDIA):
            pass

        dia = LyingDIA.from_chunks(None, chunks)
        # Corrupt the operation inside window 1 by monkeypatching the
        # reduce the window body calls — simplest black-box fault.
        import repro.dataflow.streaming as streaming_mod

        real_reduce = streaming_mod.reduce_by_key
        calls = {"n": 0}

        def lying_reduce(comm, k, v, partitioner=None):
            out_k, out_v = real_reduce(comm, k, v, partitioner)
            calls["n"] += 1
            if calls["n"] == 2 and out_v.size:
                out_v = out_v.copy()
                out_v[0] += 1
            return out_k, out_v

        streaming_mod.reduce_by_key = lying_reduce
        try:
            run = dia.reduce_by_key_checked(
                CONFIG, seed=13, chunks_per_window=2
            )
        finally:
            streaming_mod.reduce_by_key = real_reduce
        accepted = [v.accepted for v in run.verdicts]
        assert accepted == [True, False, True, True]
        assert not run.accepted

    def test_adaptive_escalation_per_window(self):
        keys, values = sum_workload(1_000, num_keys=30, seed=15)
        policy = AdaptiveCheckPolicy(escalation_seeds=4, escalate_on="always")
        run = StreamingKeyValueDIA.from_chunks(
            None, kv_chunks(keys, values, 250)
        ).reduce_by_key_checked(
            CONFIG, seed=3, chunks_per_window=2, policy=policy
        )
        assert run.accepted
        assert run.stats.windows == 2
        assert run.stats.escalated
        assert run.stats.escalation_seeds == 8  # 4 seeds × 2 windows
        for v in run.verdicts:
            adaptive = v.details["adaptive"]
            assert adaptive["escalated"]
            assert adaptive["per_seed_accepted"] == [True] * 4

    def test_keep_outputs_false_drops_payloads(self):
        keys, values = sum_workload(600, num_keys=20, seed=17)
        run = StreamingKeyValueDIA.from_chunks(
            None, kv_chunks(keys, values, 100)
        ).reduce_by_key_checked(
            CONFIG, chunks_per_window=3, keep_outputs=False
        )
        assert run.accepted and run.outputs == []
        assert len(run.verdicts) == run.stats.windows == 2

    def test_count_by_key_checked(self):
        keys, values = sum_workload(800, num_keys=25, seed=19)
        run = StreamingKeyValueDIA.from_chunks(
            None, kv_chunks(keys, values, 200)
        ).count_by_key_checked(CONFIG, chunks_per_window=4)
        assert run.accepted and run.stats.windows == 1
        out_k, out_v = run.outputs[0]
        ek, ev = aggregate_reference(
            keys, np.ones(keys.size, dtype=np.int64)
        )
        assert np.array_equal(out_k, ek) and np.array_equal(out_v, ev)


class TestStreamingSum:
    @pytest.mark.parametrize("p", [1, 3])
    def test_windowed_totals(self, p):
        values = np.arange(1, 901, dtype=np.int64)
        ctx = Context(p)

        def job(comm, v):
            chunks = [v[i : i + 100] for i in range(0, v.size, 100)]
            run = StreamingDIA.from_chunks(comm, chunks).sum_checked(
                CONFIG, seed=23, chunks_per_window=3
            )
            return run.accepted, [int(t) for t in run.outputs]

        outs = ctx.run(job, per_rank_args=ctx.split(values))
        assert all(o[0] for o in outs)
        # Every PE reports identical per-window global totals that sum to
        # the grand total.
        totals = outs[0][1]
        assert all(o[1] == totals for o in outs)
        assert sum(totals) == int(values.sum())


class TestStreamingZip:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_windowed_zip_accepts(self, p):
        a = np.arange(1_200, dtype=np.uint64)
        b = np.arange(1_200, dtype=np.uint64) * np.uint64(3)
        ctx = Context(p)

        def job(comm, x, y):
            s1 = StreamingDIA.from_chunks(
                comm, [x[i : i + 100] for i in range(0, x.size, 100)]
            )
            s2 = StreamingDIA.from_chunks(
                comm, [y[i : i + 100] for i in range(0, y.size, 100)]
            )
            run = s1.zip_checked(s2, seed=29, chunks_per_window=2)
            firsts = np.concatenate([f for f, _ in run.outputs])
            seconds = np.concatenate([s for _, s in run.outputs])
            return run.accepted, run.stats.windows, firsts, seconds

        outs = ctx.run(job, per_rank_args=list(zip(ctx.split(a), ctx.split(b))))
        assert all(o[0] for o in outs)
        got_first = np.concatenate([o[2] for o in outs])
        got_second = np.concatenate([o[3] for o in outs])
        # Window-by-window zip preserves index alignment overall.
        assert np.array_equal(np.sort(got_first), a)
        assert np.array_equal(got_second, got_first * np.uint64(3))

    def test_zip_detects_misaligned_output(self):
        a = np.arange(200, dtype=np.uint64)
        b = np.arange(200, dtype=np.uint64) + np.uint64(7)

        import repro.dataflow.streaming as streaming_mod

        real_zip = streaming_mod.zip_arrays

        def lying_zip(comm, s1, s2, return_offsets=False):
            first, second, offs = real_zip(comm, s1, s2, return_offsets=True)
            second = second.copy()
            if second.size:
                second[0] += np.uint64(1)
            return first, second, offs

        streaming_mod.zip_arrays = lying_zip
        try:
            run = StreamingDIA.from_chunks(
                None, [a[:100], a[100:]]
            ).zip_checked(
                StreamingDIA.from_chunks(None, [b[:100], b[100:]]),
                seed=31,
                chunks_per_window=4,
            )
        finally:
            streaming_mod.zip_arrays = real_zip
        assert not run.accepted

    def test_zip_adaptive_escalates_on_reject(self):
        a = np.arange(150, dtype=np.uint64)
        b = np.arange(150, dtype=np.uint64)

        import repro.dataflow.streaming as streaming_mod

        real_zip = streaming_mod.zip_arrays

        def lying_zip(comm, s1, s2, return_offsets=False):
            first, second, offs = real_zip(comm, s1, s2, return_offsets=True)
            second = second.copy()
            second[3] += np.uint64(9)
            return first, second, offs

        streaming_mod.zip_arrays = lying_zip
        try:
            run = StreamingDIA.from_chunks(None, [a]).zip_checked(
                StreamingDIA.from_chunks(None, [b]),
                seed=37,
                chunks_per_window=1,
                policy=AdaptiveCheckPolicy(escalation_seeds=3),
            )
        finally:
            streaming_mod.zip_arrays = real_zip
        assert not run.accepted
        adaptive = run.verdicts[0].details["adaptive"]
        assert adaptive["escalated"]
        # A true data error: every escalation seed rejects too.
        assert adaptive["per_seed_accepted"] == [False] * 3
        assert run.stats.escalation_seeds == 3


class TestCheckedRunStatsMerge:
    def test_merge_accumulates(self):
        a = CheckedRunStats(1.0, 0.5, windows=1, elements_fed=100)
        b = CheckedRunStats(
            2.0,
            0.25,
            escalated=True,
            escalation_seconds=0.25,
            escalation_seeds=8,
            windows=1,
            elements_fed=50,
        )
        m = a.merge(b)
        assert m.operation_seconds == 3.0
        assert m.checker_seconds == 0.75
        assert m.escalated and m.escalation_seconds == 0.25
        assert m.escalation_seeds == 8
        assert m.windows == 2 and m.elements_fed == 150
        assert m.total_seconds == 4.0
        assert m.overhead_ratio == pytest.approx(4.0 / 3.0)

    def test_accumulated_classmethod(self):
        stats = [
            CheckedRunStats(1.0, 1.0, windows=1, elements_fed=10)
            for _ in range(3)
        ]
        total = CheckedRunStats.accumulated(stats)
        assert total.windows == 3 and total.elements_fed == 30
        assert total.overhead_ratio == pytest.approx(2.0)


class TestExchangeOffsets:
    def test_global_offsets_matches_per_column(self):
        ctx = Context(4)

        def job(comm):
            counts = (comm.rank + 1, 10 * (comm.rank + 1), 7)
            return global_offsets(comm, *counts)

        outs = ctx.run(job)
        assert outs == [
            (0, 0, 0),
            (1, 10, 7),
            (3, 30, 14),
            (6, 60, 21),
        ]

    def test_sequential_offsets_zero(self):
        assert global_offsets(None, 5, 9) == (0, 0)

    def test_exchange_handle(self):
        ctx = Context(2)

        def job(comm):
            ex = Exchange(comm)
            off = ex.offsets(comm.rank + 1)
            dests = np.zeros(comm.rank + 1, dtype=np.int64)
            (got,) = ex.route(dests, np.full(comm.rank + 1, comm.rank))
            return off, got if comm.rank == 0 else None

        outs = ctx.run(job)
        assert outs[0][0] == (0,) and outs[1][0] == (1,)
        assert np.array_equal(np.sort(outs[0][1]), [0, 1, 1])

    @pytest.mark.parametrize("p", [2, 4])
    def test_zip_arrays_offsets(self, p):
        a = np.arange(40)
        b = np.arange(40) * 2
        ctx = Context(p)

        def job(comm, x, y):
            first, second, (off1, off2) = zip_arrays(
                comm, x, y, return_offsets=True
            )
            plain = zip_arrays(comm, x, y)
            return (
                np.array_equal(first, plain[0])
                and np.array_equal(second, plain[1]),
                off1,
                int(x.size),
            )

        outs = ctx.run(
            job, per_rank_args=list(zip(ctx.split(a), ctx.split(b)))
        )
        assert all(o[0] for o in outs)
        # Offsets are the exclusive prefix sums of local sizes.
        acc = 0
        for same, off1, size in outs:
            assert off1 == acc
            acc += size

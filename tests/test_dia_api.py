"""Tests for the chainable DIA API and the new checked pipelines."""

import numpy as np
import pytest

from repro.comm.context import Context
from repro.core.params import SumCheckConfig
from repro.dataflow.dia import DIA, KeyValueDIA
from repro.dataflow.pipeline import checked_join
from repro.workloads.kv import aggregate_reference, sum_workload
from repro.workloads.uniform import uniform_integers

STRONG = SumCheckConfig.parse("8x16 m15")


class TestDIALocalOps:
    def test_map_filter_chain(self):
        dia = DIA(None, np.arange(10))
        out = dia.map(lambda x: x * 3).filter(lambda x: x % 2 == 0)
        assert out.collect_local().tolist() == [0, 6, 12, 18, 24]

    def test_size_distributed(self):
        ctx = Context(4)
        out = ctx.run(lambda comm: DIA(comm, np.arange(comm.rank + 1)).size())
        assert out == [10] * 4

    def test_collect_assembles_everything(self):
        ctx = Context(3)
        out = ctx.run(
            lambda comm: DIA(comm, np.full(2, comm.rank)).collect().tolist()
        )
        assert out == [[0, 0, 1, 1, 2, 2]] * 3

    def test_kv_requires_alignment(self):
        with pytest.raises(ValueError):
            KeyValueDIA(None, np.arange(3), np.arange(4))

    def test_kv_map_and_filter(self):
        kv = KeyValueDIA(None, np.arange(6), np.arange(6) * 10)
        out = kv.map_pairs(lambda k, v: (k, v + 1)).filter_pairs(
            lambda k, v: k >= 3
        )
        keys, values = out.collect_local()
        assert keys.tolist() == [3, 4, 5]
        assert values.tolist() == [31, 41, 51]


class TestDIADistributedChecked:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_sort_checked(self, p):
        data = uniform_integers(3_000, seed=1)
        ctx = Context(p)

        def run(comm, chunk):
            out, verdict = DIA(comm, chunk).sort_checked(seed=2)
            return out.collect_local(), verdict.accepted

        outs = ctx.run(run, per_rank_args=ctx.split(data))
        assert all(o[1] for o in outs)
        assert np.array_equal(
            np.concatenate([o[0] for o in outs]), np.sort(data)
        )

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_reduce_by_key_checked(self, p):
        keys, values = sum_workload(2_000, num_keys=100, seed=3)
        ref_k, ref_v = aggregate_reference(keys, values)
        ctx = Context(p)

        def run(comm, k, v):
            out, verdict = (
                DIA(comm, k).with_values(v).reduce_by_key_checked(STRONG, seed=4)
            )
            return out.collect_local(), verdict.accepted

        outs = ctx.run(
            run, per_rank_args=list(zip(ctx.split(keys), ctx.split(values)))
        )
        assert all(o[1] for o in outs)
        got_k = np.concatenate([o[0][0] for o in outs])
        got_v = np.concatenate([o[0][1] for o in outs])
        order = np.argsort(got_k)
        assert np.array_equal(got_k[order], ref_k)
        assert np.array_equal(got_v[order], ref_v)

    @pytest.mark.parametrize("p", [2, 4])
    def test_union_and_merge_checked(self, p):
        a = np.sort(uniform_integers(1_000, seed=5))
        b = np.sort(uniform_integers(800, seed=6))
        ctx = Context(p)

        def run(comm, ca, cb):
            da, db = DIA(comm, ca), DIA(comm, cb)
            u, uv = da.union_checked(db, seed=7)
            m, mv = da.merge_checked(db, seed=7)
            return uv.accepted, mv.accepted, m.collect_local()

        outs = ctx.run(run, per_rank_args=list(zip(ctx.split(a), ctx.split(b))))
        assert all(o[0] and o[1] for o in outs)
        merged = np.concatenate([o[2] for o in outs])
        assert np.array_equal(merged, np.sort(np.concatenate([a, b])))

    @pytest.mark.parametrize("p", [2, 4])
    def test_zip_checked(self, p):
        a = uniform_integers(900, seed=8)
        b = uniform_integers(900, seed=9)
        ctx = Context(p)

        def run(comm, ca, cb):
            zipped, verdict = DIA(comm, ca).zip_checked(DIA(comm, cb), seed=10)
            return verdict.accepted, zipped.collect_local()

        outs = ctx.run(run, per_rank_args=list(zip(ctx.split(a), ctx.split(b))))
        assert all(o[0] for o in outs)
        firsts = np.concatenate([o[1][0] for o in outs])
        seconds = np.concatenate([o[1][1] for o in outs])
        assert np.array_equal(firsts, a) and np.array_equal(seconds, b)

    @pytest.mark.parametrize("p", [2, 4])
    def test_group_by_key_checked(self, p):
        keys, values = sum_workload(1_500, num_keys=80, seed=11)
        ctx = Context(p)

        def run(comm, k, v):
            (uk, groups), verdict = (
                DIA(comm, k).with_values(v).group_by_key_checked(seed=12)
            )
            return verdict.accepted, sum(g.size for g in groups)

        outs = ctx.run(
            run, per_rank_args=list(zip(ctx.split(keys), ctx.split(values)))
        )
        assert all(o[0] for o in outs)
        assert sum(o[1] for o in outs) == keys.size


class TestCheckedJoin:
    def _relations(self):
        rk = np.array([1, 2, 3, 4, 5] * 20, dtype=np.uint64)
        rv = np.arange(100, dtype=np.int64)
        sk = np.array([2, 3, 4] * 15, dtype=np.uint64)
        sv = np.arange(45, dtype=np.int64)
        return rk, rv, sk, sv

    @pytest.mark.parametrize("mode", ["hash", "range"])
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_clean_join_accepts(self, mode, p):
        rk, rv, sk, sv = self._relations()
        ctx = Context(p)

        def run(comm, a, b, c, d):
            jx, verdict, stats = checked_join(
                comm, (a, b), (c, d), mode=mode, seed=13
            )
            return jx.keys.size, verdict.accepted

        outs = ctx.run(
            run,
            per_rank_args=list(
                zip(ctx.split(rk), ctx.split(rv), ctx.split(sk), ctx.split(sv))
            ),
        )
        assert all(o[1] for o in outs)
        expected = sum(
            int((rk == k).sum()) * int((sk == k).sum()) for k in (1, 2, 3, 4, 5)
        )
        assert sum(o[0] for o in outs) == expected

    def test_invalid_mode(self):
        empty = (np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64))
        with pytest.raises(ValueError):
            checked_join(None, empty, empty, mode="quantum")


class TestSortMergeJoin:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_matches_hash_join_rows(self, p):
        from repro.dataflow.ops.join import hash_join
        from repro.dataflow.ops.sort_merge_join import sort_merge_join

        rng = np.random.default_rng(14)
        rk = rng.integers(0, 50, 300).astype(np.uint64)
        rv = np.arange(300, dtype=np.int64)
        sk = rng.integers(0, 50, 200).astype(np.uint64)
        sv = np.arange(200, dtype=np.int64)
        ctx = Context(p)

        def run(comm, a, b, c, d):
            smj = sort_merge_join(comm, (a, b), (c, d))
            hj = hash_join(comm, (a, b), (c, d))
            return smj.keys.size, hj.keys.size, smj

        outs = ctx.run(
            run,
            per_rank_args=list(
                zip(ctx.split(rk), ctx.split(rv), ctx.split(sk), ctx.split(sv))
            ),
        )
        assert sum(o[0] for o in outs) == sum(o[1] for o in outs)

    def test_range_partition_property(self):
        """After the exchange, PE i's keys all precede PE i+1's keys."""
        from repro.dataflow.ops.sort_merge_join import sort_merge_join

        rng = np.random.default_rng(15)
        rk = rng.integers(0, 1000, 400).astype(np.uint64)
        rv = np.arange(400, dtype=np.int64)
        sk = rng.integers(0, 1000, 300).astype(np.uint64)
        sv = np.arange(300, dtype=np.int64)
        ctx = Context(4)

        def run(comm, a, b, c, d):
            jx = sort_merge_join(comm, (a, b), (c, d))
            combined = np.concatenate([jx.r_post[0], jx.s_post[0]])
            lo = int(combined.min()) if combined.size else None
            hi = int(combined.max()) if combined.size else None
            return lo, hi

        bounds = ctx.run(
            run,
            per_rank_args=list(
                zip(ctx.split(rk), ctx.split(rv), ctx.split(sk), ctx.split(sv))
            ),
        )
        prev_hi = None
        for lo, hi in bounds:
            if lo is None:
                continue
            if prev_hi is not None:
                assert lo >= prev_hi
            prev_hi = hi


class TestMinBitvectorChecker:
    def test_accepts_correct(self):
        from repro.core.minmax_checker import check_min_aggregation_bitvector

        keys = np.array([1, 1, 2, 3], dtype=np.uint64)
        values = np.array([5, 3, 8, 7], dtype=np.int64)
        assert check_min_aggregation_bitvector(
            (keys, values),
            np.array([1, 2, 3], dtype=np.uint64),
            np.array([3, 8, 7], dtype=np.int64),
        ).accepted

    def test_rejects_wrong_extremes(self):
        from repro.core.minmax_checker import check_min_aggregation_bitvector

        keys = np.array([1, 1], dtype=np.uint64)
        values = np.array([5, 3], dtype=np.int64)
        for wrong in (2, 4, 5):  # too small / between / too large
            assert not check_min_aggregation_bitvector(
                (keys, values),
                np.array([1], dtype=np.uint64),
                np.array([wrong], dtype=np.int64),
            ).accepted

    @pytest.mark.parametrize("p", [2, 4])
    def test_distributed_no_certificate_needed(self, p):
        from repro.core.minmax_checker import check_min_aggregation_bitvector
        from repro.dataflow.ops.aggregates import min_by_key

        keys, values = sum_workload(800, num_keys=50, seed=16)
        ctx = Context(p)

        def run(comm, k, v):
            res = min_by_key(comm, k, v)
            return check_min_aggregation_bitvector(
                (k, v), res.keys, res.values, comm=comm, seed=17
            ).accepted

        verdicts = ctx.run(
            run, per_rank_args=list(zip(ctx.split(keys), ctx.split(values)))
        )
        assert verdicts == [True] * p

    def test_distributed_detects_min_nowhere_present(self):
        from repro.core.minmax_checker import check_min_aggregation_bitvector

        ctx = Context(2)
        chunks = [
            (np.array([1], dtype=np.uint64), np.array([5], dtype=np.int64)),
            (np.array([1], dtype=np.uint64), np.array([7], dtype=np.int64)),
        ]

        def run(comm, k, v):
            return check_min_aggregation_bitvector(
                (k, v),
                np.array([1], dtype=np.uint64),
                np.array([4], dtype=np.int64),  # below both PEs' elements
                comm=comm,
            ).accepted

        assert ctx.run(run, per_rank_args=chunks) == [False, False]

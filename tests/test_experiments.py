"""Tests for the experiment harness (accuracy/overhead/scaling/volume)."""

import numpy as np
import pytest

from repro.core.params import PermCheckConfig, SumCheckConfig
from repro.experiments.accuracy import (
    AccuracyCell,
    perm_checker_accuracy,
    perm_checker_accuracy_full,
    sum_checker_accuracy,
    sum_checker_accuracy_full,
)
from repro.experiments.overhead import (
    reduce_baseline_ns,
    sort_checker_overhead_ns,
    sum_checker_overhead_ns,
)
from repro.experiments.report import format_series, format_table
from repro.experiments.scaling import measured_weak_scaling, modeled_weak_scaling
from repro.experiments.volume import checker_volume_table


class TestAccuracyCell:
    def test_derived_statistics(self):
        cell = AccuracyCell("c", "cfg", "m", trials=100, failures=25, expected_delta=0.5)
        assert cell.failure_rate == 0.25
        assert cell.ratio == 0.5
        assert 0 < cell.stderr < 0.06

    def test_zero_trials(self):
        cell = AccuracyCell("c", "cfg", "m", trials=0, failures=0, expected_delta=0.5)
        assert cell.failure_rate == 0.0 and cell.stderr == 0.0


class TestFastVsFullPathAgreement:
    """The load-bearing property: the exact fast path and the genuine
    end-to-end path estimate the same failure rate."""

    def test_sum_checker_paths_agree_statistically(self):
        cfg = SumCheckConfig(iterations=1, d=2, rhat=1 << 31, hash_family="Tab")
        fast = sum_checker_accuracy(
            cfg, "RandKey", trials=300, n_elements=2_000, num_keys=500, seed=7
        )
        full = sum_checker_accuracy_full(
            cfg, "RandKey", trials=300, n_elements=2_000, num_keys=500, seed=7
        )
        # Same workload, same per-trial seeds → identical verdicts.
        assert fast.failures == full.failures

    def test_perm_checker_paths_agree_statistically(self):
        cfg = PermCheckConfig(log_h=2, hash_family="Tab")
        fast = perm_checker_accuracy(
            cfg, "Increment", trials=300, n_elements=1_000, universe=10**6, seed=9
        )
        full = perm_checker_accuracy_full(
            cfg, "Increment", trials=300, n_elements=1_000, universe=10**6, seed=9
        )
        # Paths share manipulator draws (same trial seeds); verdict events
        # coincide because the common elements cancel exactly.
        assert fast.failures == full.failures

    def test_sum_fast_path_rate_matches_theory(self):
        """RandKey vs 1x2: miss iff both keys share the bucket → 1/2."""
        cfg = SumCheckConfig(iterations=1, d=2, rhat=1 << 31, hash_family="Mix")
        cell = sum_checker_accuracy(cfg, "RandKey", trials=2_000, seed=3)
        assert cell.failure_rate == pytest.approx(0.5, abs=0.05)

    def test_perm_fast_path_rate_matches_theory(self):
        cfg = PermCheckConfig(log_h=3, hash_family="Mix")
        cell = perm_checker_accuracy(cfg, "Randomize", trials=2_000, seed=4)
        assert cell.failure_rate == pytest.approx(1 / 8, abs=0.03)

    def test_strong_config_never_misses_in_small_sample(self):
        cfg = SumCheckConfig.parse("8x16 m15").with_hash("Tab64")
        cell = sum_checker_accuracy(cfg, "Bitflip", trials=200, seed=5)
        assert cell.failures == 0


class TestOverhead:
    def test_rows_are_positive_and_labelled(self):
        row = sum_checker_overhead_ns(
            SumCheckConfig.parse("4x8 m5"), n_elements=20_000, repeats=2
        )
        assert row.ns_per_element > 0
        assert "4x8" in row.label

    def test_baseline_positive(self):
        assert reduce_baseline_ns(n_elements=20_000, repeats=2).ns_per_element > 0

    def test_sort_checker_overhead(self):
        row = sort_checker_overhead_ns("Mix", n_elements=20_000, repeats=2)
        assert row.ns_per_element > 0


class TestOverheadEngine:
    """The batched Table 5 engine: one workload, one interleaved sweep."""

    def test_full_table5_in_one_pass(self):
        from repro.core.params import PAPER_TABLE3_SCALING
        from repro.experiments.overhead import OverheadEngine

        engine = OverheadEngine(n_elements=5_000, repeats=1)
        rows = engine.measure_table5(PAPER_TABLE3_SCALING)
        labels = [r.label for r in rows]
        assert labels[:-1] == PAPER_TABLE3_SCALING
        assert labels[-1] == "local reduce (baseline)"
        assert all(r.ns_per_element > 0 for r in rows)

    def test_workload_generated_once(self):
        from repro.experiments.overhead import OverheadEngine

        engine = OverheadEngine(n_elements=2_000, repeats=1)
        engine.measure_table5(["4x8 m5"], include_baseline=True)
        keys_first = engine.kv_workload[0]
        engine.measure_table5(["4x4 m3"], include_baseline=False)
        assert engine.kv_workload[0] is keys_first

    def test_multiseed_row(self):
        from repro.experiments.overhead import multiseed_sum_overhead_ns

        row = multiseed_sum_overhead_ns(
            SumCheckConfig.parse("4x8 m5"), num_seeds=4,
            n_elements=5_000, repeats=1,
        )
        assert row.ns_per_element > 0
        assert "multi-seed" in row.label and "x4 seeds" in row.label

    def test_sort_rows_share_sweep(self):
        from repro.experiments.overhead import OverheadEngine

        rows = OverheadEngine(n_elements=5_000, repeats=1).measure_sort(
            ("CRC", "Mix")
        )
        assert [r.label for r in rows] == [
            "sort checker (CRC)",
            "sort checker (Mix)",
        ]

    def test_validation(self):
        from repro.experiments.overhead import OverheadEngine

        with pytest.raises(ValueError):
            OverheadEngine(n_elements=0)
        with pytest.raises(ValueError):
            OverheadEngine(repeats=0)


class TestScaling:
    def test_measured_points_structure(self):
        points = measured_weak_scaling(
            SumCheckConfig.parse("4x8 m5"),
            items_per_pe=2_000,
            pes=(1, 2),
            repeats=1,
            num_keys=1_000,
        )
        assert [pt.p for pt in points] == [1, 2]
        for pt in points:
            assert pt.time_with >= 0 and pt.time_without >= 0
            assert pt.ratio >= 1.0 or pt.time_with < pt.time_without

    def test_modeled_ratio_decreases_or_flat_with_p(self):
        points = modeled_weak_scaling(
            SumCheckConfig.parse("5x16 m5"),
            pes=(32, 256, 4096),
            check_local_ns=5.0,
            reduce_local_ns=90.0,
        )
        ratios = [pt.ratio for pt in points]
        assert ratios[-1] <= ratios[0] + 1e-9
        # With the paper's local-cost ratio the overhead is a few percent.
        assert ratios[-1] < 1.15

    def test_measured_multiseed_points(self):
        points = measured_weak_scaling(
            SumCheckConfig.parse("4x8 m5"),
            items_per_pe=2_000,
            pes=(1, 2),
            repeats=1,
            num_keys=1_000,
            num_seeds=4,
        )
        assert [pt.p for pt in points] == [1, 2]
        for pt in points:
            assert pt.time_with >= pt.time_without >= 0

    def test_modeled_multiseed_row(self):
        """The δ^T row: T× the table on the wire, amortized local cost."""
        single = modeled_weak_scaling(
            SumCheckConfig.parse("5x16 m5"),
            pes=(32, 4096),
            check_local_ns=5.0,
            reduce_local_ns=90.0,
        )
        multi = modeled_weak_scaling(
            SumCheckConfig.parse("5x16 m5"),
            pes=(32, 4096),
            check_local_ns=5.0 * 8,  # 8 seeds at the single-seed rate
            reduce_local_ns=90.0,
            num_seeds=8,
        )
        for s, m in zip(single, multi):
            assert m.ratio > s.ratio  # more seeds cost more...
            assert m.ratio < 1.0 + 8 * (s.ratio - 1.0) + 1e-9  # ...but < T×

    def test_modeled_with_paper_constants_matches_fig4_band(self):
        """Feeding the paper's measured ns constants into the α–β model
        lands the overhead inside Fig 4's 1.01–1.12 band."""
        for label, ns in (("5x16 m5", 4.5), ("16x16 m15", 10.0)):
            points = modeled_weak_scaling(
                SumCheckConfig.parse(label),
                pes=(32, 128, 1024, 4096),
                check_local_ns=ns,
                reduce_local_ns=88.0,
            )
            for pt in points:
                assert 1.0 < pt.ratio < 1.25

    def test_modeled_streaming_windows_row(self):
        """Wire volume and settle latency scale linearly with windows;
        the local condensed-checker work is window-invariant."""
        from repro.experiments.scaling import modeled_streaming_windows

        cfg = SumCheckConfig.parse("8x16 m15")
        points = modeled_streaming_windows(
            cfg, windows=(1, 4, 16), check_local_ns=5.0, num_seeds=3
        )
        assert [pt.windows for pt in points] == [1, 4, 16]
        base = points[0]
        assert base.wire_bits_total == 3 * cfg.table_bits
        for pt in points:
            assert pt.wire_bits_total == pt.windows * base.wire_bits_total
            assert pt.settle_seconds == pytest.approx(
                pt.windows * base.settle_seconds
            )
            assert pt.local_seconds == base.local_seconds
            assert pt.wire_bits_per_window == base.wire_bits_total
            assert pt.total_seconds > pt.settle_seconds


class TestVolume:
    def test_volume_flat_in_n(self):
        rows = checker_volume_table(
            checkers=("sum", "permutation"), ns=(500, 5_000), p=4, seed=1
        )
        by_checker = {}
        for r in rows:
            by_checker.setdefault(r.checker, []).append(r.bottleneck_bytes)
        for name, volumes in by_checker.items():
            assert volumes[0] == volumes[1], (name, volumes)

    def test_message_counts_polylog(self):
        rows = checker_volume_table(checkers=("sort",), ns=(2_000,), p=4, seed=2)
        assert all(r.max_messages_per_pe <= 32 for r in rows)


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "---" in lines[1]

    def test_format_series(self):
        out = format_series("s", [1, 2], [0.5, 0.7], "p", "ratio")
        assert "s: p -> ratio" in out
        assert len(out.splitlines()) == 3


class TestLocalizationHarness:
    CONFIG = SumCheckConfig.parse("4x16 m15")

    def _trials(self, n=6, **kw):
        from repro.experiments.localization import run_localization_trials

        kw.setdefault("windows", 2)
        kw.setdefault("elements_per_window", 512)
        kw.setdefault("key_domain", 64)
        kw.setdefault("seed", 3)
        return run_localization_trials(self.CONFIG, n, **kw)

    def test_trials_detect_localize_and_repair(self):
        from repro.experiments.localization import DEFAULT_MANIPULATORS

        batch = self._trials(len(DEFAULT_MANIPULATORS))
        # One trial per Table 4 manipulator, targets cycling the windows.
        assert [t.manipulator for t in batch] == list(DEFAULT_MANIPULATORS)
        assert {t.target_window for t in batch} == {0, 1}
        for t in batch:
            assert t.exact_window, t.manipulator
            assert t.localized, t.manipulator
            assert t.keys_covered, t.manipulator
            assert t.repaired, t.manipulator
            assert t.bit_identical, t.manipulator
            assert t.repair_attempts >= 1

    def test_batch_is_bit_reproducible(self):
        from dataclasses import asdict

        def outcome(t):
            d = asdict(t)
            d.pop("check_seconds")
            d.pop("localization_seconds")
            return d

        a = self._trials(4)
        b = self._trials(4)
        # Identical up to wall-clock: workloads, faults, verdicts, ranges.
        assert [outcome(t) for t in a] == [outcome(t) for t in b]

    def test_summary_rates(self):
        from repro.experiments.localization import summarize_trials

        batch = self._trials(6)
        s = summarize_trials(batch)
        assert s.trials == 6
        assert s.exact_window_rate == 1.0
        assert s.localized_rate == 1.0
        assert s.key_cover_rate == 1.0
        assert s.repair_rate == 1.0
        assert s.bit_identical_rate == 1.0
        assert s.mean_bisection_rounds >= 0.0
        assert s.mean_check_seconds > 0.0

    def test_accuracy_wrapper(self):
        from repro.experiments.localization import (
            LocalizationSummary,
            localization_accuracy,
        )

        s = localization_accuracy(
            self.CONFIG,
            2,
            windows=2,
            elements_per_window=512,
            key_domain=64,
            seed=5,
        )
        assert isinstance(s, LocalizationSummary)
        assert s.trials == 2

    def test_rejects_empty_batch(self):
        from repro.experiments.localization import run_localization_trials

        with pytest.raises(ValueError):
            run_localization_trials(self.CONFIG, 0)

"""Tests for the batched trial engine (experiments/engine.py).

The load-bearing property: the engine is *exactly* the reference per-trial
loop, vectorized — same `derive_seed` tree, same stream draws, same
verdict for every single trial, for every manipulator and hash family.
"""

import numpy as np
import pytest

from repro.core.params import PermCheckConfig, SumCheckConfig
from repro.core.permutation_checker import HashSumPermutationChecker
from repro.core.sum_checker import SumAggregationChecker
from repro.experiments.accuracy import (
    _kv_manipulator,
    _seq_manipulator,
    _storage_aware_family,
    perm_checker_accuracy,
    sum_checker_accuracy,
)
from repro.experiments.engine import (
    BatchedPermAccuracy,
    BatchedSumAccuracy,
    perm_change_verdicts,
    sum_delta_verdicts,
)
from repro.faults.manipulators import (
    PERM_MANIPULATORS,
    SUM_MANIPULATORS,
    KVManipulationBatch,
)
from repro.util.rng import SplitMixStream, derive_seed
from repro.workloads.kv import sum_workload
from repro.workloads.uniform import uniform_integers

_SUM_FAMILIES = ("CRC", "Tab", "Mix")
_PERM_FAMILIES = ("CRC", "Tab", "Mix")
_TRIALS = 300
_N_ELEMENTS = 2_000
_NUM_KEYS = 500
_UNIVERSE = 10**6


def _reference_sum_verdicts(config, manipulator, trials, seed):
    """Per-trial detection flags of the reference loop (the oracle)."""
    keys, values = sum_workload(
        _N_ELEMENTS, _NUM_KEYS, seed=derive_seed(seed, "wl")
    )
    man = _kv_manipulator(manipulator, _NUM_KEYS)
    effective = config.with_hash(
        _storage_aware_family(config.hash_family, _NUM_KEYS)
    )
    out = np.zeros(trials, dtype=bool)
    for trial in range(trials):
        rng = SplitMixStream(derive_seed(seed, "trial", trial))
        effect = man.sample_delta(rng, keys, values)
        checker = SumAggregationChecker(
            effective, derive_seed(seed, "checker", trial)
        )
        out[trial] = checker.detects_delta(effect.delta_keys, effect.delta_values)
    return out


def _reference_perm_verdicts(config, manipulator, trials, seed):
    sequence = uniform_integers(
        min(10**6, 1 << 16), _UNIVERSE, seed=derive_seed(seed, "wl")
    )
    man = _seq_manipulator(manipulator, _UNIVERSE)
    family = _storage_aware_family(config.hash_family, _UNIVERSE)
    out = np.zeros(trials, dtype=bool)
    for trial in range(trials):
        rng = SplitMixStream(derive_seed(seed, "trial", trial))
        change = man.sample_change(rng, sequence)
        checker = HashSumPermutationChecker(
            iterations=config.iterations,
            hash_family=family,
            log_h=config.log_h,
            seed=derive_seed(seed, "hash", trial),
        )
        lambdas = checker.lambda_values(change.removed, change.added)
        out[trial] = any(lam != 0 for lam in lambdas)
    return out


class TestSumEngineMatchesReference:
    @pytest.mark.parametrize("family", _SUM_FAMILIES)
    @pytest.mark.parametrize("manipulator", sorted(SUM_MANIPULATORS))
    def test_per_trial_verdicts_identical(self, manipulator, family):
        # A weak config so both detections and misses occur in 300 trials.
        config = SumCheckConfig.parse("1x2 m2").with_hash(family)
        seed = 0xE1
        engine = BatchedSumAccuracy(
            config, manipulator, n_elements=_N_ELEMENTS, num_keys=_NUM_KEYS,
            seed=seed,
        )
        got = engine.verdicts(_TRIALS)
        expected = _reference_sum_verdicts(config, manipulator, _TRIALS, seed)
        assert np.array_equal(got, expected)
        assert got.any() and not got.all(), "test config should be fallible"

    def test_strong_config_and_chunking(self):
        config = SumCheckConfig.parse("8x16 m15").with_hash("Tab")
        engine = BatchedSumAccuracy(
            config, "Bitflip", n_elements=_N_ELEMENTS, num_keys=_NUM_KEYS,
            seed=1, chunk_trials=64,
        )
        # chunk_trials=64 forces several chunks over 150 trials; results
        # must not depend on the chunk boundaries.
        expected = _reference_sum_verdicts(config, "Bitflip", 150, 1)
        assert np.array_equal(engine.verdicts(150), expected)

    def test_cell_equality_via_public_api(self):
        config = SumCheckConfig.parse("4x4 m3").with_hash("CRC")
        kwargs = dict(n_elements=_N_ELEMENTS, num_keys=_NUM_KEYS, seed=3)
        batched = sum_checker_accuracy(
            config, "IncDec2", 1_000, mode="batched", **kwargs
        )
        reference = sum_checker_accuracy(
            config, "IncDec2", 1_000, mode="reference", **kwargs
        )
        assert batched == reference

    def test_unknown_mode_rejected(self):
        config = SumCheckConfig.parse("4x4 m3")
        with pytest.raises(ValueError):
            sum_checker_accuracy(config, "Bitflip", 1, mode="nope")


class TestPermEngineMatchesReference:
    @pytest.mark.parametrize("family", _PERM_FAMILIES)
    @pytest.mark.parametrize("manipulator", sorted(PERM_MANIPULATORS))
    def test_per_trial_verdicts_identical(self, manipulator, family):
        config = PermCheckConfig(log_h=2, hash_family=family)
        seed = 0xE5
        engine = BatchedPermAccuracy(
            config, manipulator, universe=_UNIVERSE, seed=seed
        )
        got = engine.verdicts(_TRIALS)
        expected = _reference_perm_verdicts(config, manipulator, _TRIALS, seed)
        assert np.array_equal(got, expected)
        assert got.any() and not got.all(), "log_h=2 should be fallible"

    def test_multi_iteration_checker(self):
        config = PermCheckConfig(log_h=1, hash_family="Mix", iterations=3)
        engine = BatchedPermAccuracy(
            config, "Randomize", universe=_UNIVERSE, seed=11
        )
        expected = _reference_perm_verdicts(config, "Randomize", _TRIALS, 11)
        assert np.array_equal(engine.verdicts(_TRIALS), expected)

    def test_cell_equality_via_public_api(self):
        config = PermCheckConfig(log_h=3, hash_family="Tab")
        batched = perm_checker_accuracy(
            config, "SetEqual", 1_000, universe=_UNIVERSE, seed=5, mode="batched"
        )
        reference = perm_checker_accuracy(
            config, "SetEqual", 1_000, universe=_UNIVERSE, seed=5,
            mode="reference",
        )
        assert batched == reference


class TestEdgeCases:
    @pytest.mark.parametrize("trials", [0, 1])
    def test_sum_trial_count_edges(self, trials):
        config = SumCheckConfig.parse("4x4 m3").with_hash("Tab")
        kwargs = dict(n_elements=_N_ELEMENTS, num_keys=_NUM_KEYS, seed=9)
        batched = sum_checker_accuracy(
            config, "RandKey", trials, mode="batched", **kwargs
        )
        reference = sum_checker_accuracy(
            config, "RandKey", trials, mode="reference", **kwargs
        )
        assert batched == reference
        assert batched.trials == trials

    @pytest.mark.parametrize("trials", [0, 1])
    def test_perm_trial_count_edges(self, trials):
        config = PermCheckConfig(log_h=2, hash_family="CRC")
        batched = perm_checker_accuracy(
            config, "Increment", trials, universe=_UNIVERSE, seed=9,
            mode="batched",
        )
        reference = perm_checker_accuracy(
            config, "Increment", trials, universe=_UNIVERSE, seed=9,
            mode="reference",
        )
        assert batched == reference
        assert batched.trials == trials

    def test_verdict_kernel_validates_trial_counts(self):
        config = SumCheckConfig.parse("4x4 m3")
        delta = KVManipulationBatch(
            owner=np.zeros(1, dtype=np.intp),
            delta_keys=np.array([1], dtype=np.uint64),
            delta_values=np.array([1], dtype=np.int64),
            trials=1,
        )
        with pytest.raises(ValueError):
            sum_delta_verdicts(config, np.arange(2, dtype=np.uint64), delta)

    def test_invalid_chunk_trials(self):
        config = SumCheckConfig.parse("4x4 m3")
        with pytest.raises(ValueError):
            BatchedSumAccuracy(config, "Bitflip", seed=0, chunk_trials=0)


class TestVerdictKernelsDirect:
    def test_sum_delta_verdicts_vs_scalar_checkers(self):
        """The kernel equals per-seed ``detects_delta`` on a shared delta."""
        config = SumCheckConfig.parse("2x4 m2").with_hash("Mix")
        trials = 200
        seeds = np.arange(trials, dtype=np.uint64) * np.uint64(13) + np.uint64(5)
        dk = np.array([7, 8], dtype=np.uint64)
        dv = np.array([3, -3], dtype=np.int64)
        delta = KVManipulationBatch(
            owner=np.repeat(np.arange(trials, dtype=np.intp), 2),
            delta_keys=np.tile(dk, trials),
            delta_values=np.tile(dv, trials),
            trials=trials,
        )
        got = sum_delta_verdicts(config, seeds, delta)
        for t in range(trials):
            checker = SumAggregationChecker(config, int(seeds[t]))
            assert got[t] == checker.detects_delta(dk, dv)
        assert got.any() and not got.all()

    def test_perm_change_verdicts_vs_scalar_checkers(self):
        config = PermCheckConfig(log_h=2, hash_family="Tab")
        trials = 200
        seeds = np.arange(trials, dtype=np.uint64) * np.uint64(3) + np.uint64(1)
        removed = np.full(trials, 12345, dtype=np.uint64)
        added = np.full(trials, 54321, dtype=np.uint64)
        got = perm_change_verdicts(config, "Tab", seeds, removed, added)
        for t in range(trials):
            checker = HashSumPermutationChecker(
                iterations=config.iterations,
                hash_family="Tab",
                log_h=config.log_h,
                seed=int(seeds[t]),
            )
            lambdas = checker.lambda_values(removed[t : t + 1], added[t : t + 1])
            assert got[t] == any(lam != 0 for lam in lambdas)

    def test_huge_modulus_stays_exact(self):
        """Residue sums beyond float64's 2^52 mantissa must not flip verdicts.

        Three same-bucket residues near 2r̂ = 2^53 overflow the float64
        fast path; the kernel must fall back to exact int64 accumulation
        and agree with the scalar checker.
        """
        config = SumCheckConfig(iterations=1, d=2, rhat=1 << 52, hash_family="Mix")
        trials = 16
        seeds = np.arange(trials, dtype=np.uint64)
        dk = np.array([10, 11, 12], dtype=np.uint64)
        delta = KVManipulationBatch(
            owner=np.repeat(np.arange(trials, dtype=np.intp), 3),
            delta_keys=np.tile(dk, trials),
            delta_values=np.zeros(3 * trials, dtype=np.int64),
            trials=trials,
        )
        for t in range(trials):
            checker = SumAggregationChecker(config, int(seeds[t]))
            r = int(checker.moduli[0])
            dv = np.array([r - 1, r - 1, 3 - 2 * r], dtype=np.int64)
            delta.delta_values[3 * t : 3 * t + 3] = dv
        got = sum_delta_verdicts(config, seeds, delta)
        for t in range(trials):
            checker = SumAggregationChecker(config, int(seeds[t]))
            expected = checker.detects_delta(
                delta.delta_keys[3 * t : 3 * t + 3],
                delta.delta_values[3 * t : 3 * t + 3],
            )
            assert got[t] == expected, t

    def test_perm_log_h_out_of_range(self):
        config = PermCheckConfig(log_h=40, hash_family="Mix")
        with pytest.raises(ValueError):
            perm_change_verdicts(
                config,
                "Tab",  # 32-bit family cannot serve log_h=40
                np.arange(2, dtype=np.uint64),
                np.array([1, 2], dtype=np.uint64),
                np.array([3, 4], dtype=np.uint64),
            )

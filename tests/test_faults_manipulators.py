"""Tests for the fault-injection manipulators (Tables 4 and 6).

The central property: the sparse delta a manipulator reports must equal the
actual difference between the aggregates of the manipulated and original
data — this is what licenses the fast accuracy path.
"""

import numpy as np
import pytest

from repro.faults.manipulators import (
    PERM_MANIPULATORS,
    SUM_MANIPULATORS,
    IncDec,
    get_kv_manipulator,
    get_seq_manipulator,
)
from repro.workloads.kv import aggregate_reference, sum_workload


def _delta_from_aggregates(keys, values, new_keys, new_values):
    """Reference: per-key aggregate difference via two exact aggregations."""
    base_k, base_v = aggregate_reference(keys, values)
    new_k, new_v = aggregate_reference(new_keys, new_values)
    delta: dict[int, int] = {}
    for k, v in zip(new_k.tolist(), new_v.tolist()):
        delta[k] = delta.get(k, 0) + v
    for k, v in zip(base_k.tolist(), base_v.tolist()):
        delta[k] = delta.get(k, 0) - v
    return {k: v for k, v in delta.items() if v != 0}


@pytest.fixture(scope="module")
def workload():
    return sum_workload(400, num_keys=50, seed=13)


class TestKVManipulators:
    @pytest.mark.parametrize("name", sorted(SUM_MANIPULATORS))
    @pytest.mark.parametrize("trial", range(5))
    def test_delta_matches_actual_aggregate_difference(self, name, trial, workload):
        keys, values = workload
        man = get_kv_manipulator(name) if name != "RandKey" else get_kv_manipulator(
            name, key_domain=50
        )
        rng = np.random.default_rng(trial * 101 + 7)
        result = man.apply(rng, keys, values)
        expected = _delta_from_aggregates(
            keys, values, result.keys, result.values
        )
        got = dict(
            zip(result.delta_keys.tolist(), result.delta_values.tolist())
        )
        assert got == expected

    @pytest.mark.parametrize("name", sorted(SUM_MANIPULATORS))
    def test_delta_is_never_empty(self, name, workload):
        keys, values = workload
        man = get_kv_manipulator(name)
        for trial in range(20):
            rng = np.random.default_rng(trial)
            effect = man.sample_delta(rng, keys, values)
            assert effect.delta_keys.size > 0
            assert np.all(effect.delta_values != 0)

    @pytest.mark.parametrize("name", sorted(SUM_MANIPULATORS))
    def test_sample_delta_matches_apply_for_same_rng(self, name, workload):
        keys, values = workload
        man = get_kv_manipulator(name)
        a = man.sample_delta(np.random.default_rng(5), keys, values)
        b = man.apply(np.random.default_rng(5), keys, values)
        assert np.array_equal(a.delta_keys, b.delta_keys)
        assert np.array_equal(a.delta_values, b.delta_values)

    def test_incdec_touches_distinct_keys(self, workload):
        keys, values = workload
        man = IncDec(2)
        rng = np.random.default_rng(3)
        result = man.apply(rng, keys, values)
        # 2n=4 elements edited, all with different original keys.
        assert result.keys is not None
        changed = np.flatnonzero(
            (result.keys != keys) | (result.values != values)
        )
        original = keys[changed]
        assert len(set(original.tolist())) == changed.size

    def test_incdec_validation(self):
        with pytest.raises(ValueError):
            IncDec(0)

    def test_switch_values_preserves_total_sum(self, workload):
        keys, values = workload
        man = get_kv_manipulator("SwitchValues")
        result = man.apply(np.random.default_rng(1), keys, values)
        assert result.values.sum() == values.sum()
        assert result.delta_values.sum() == 0

    def test_inckey_moves_value_to_next_key(self, workload):
        keys, values = workload
        man = get_kv_manipulator("IncKey")
        result = man.apply(np.random.default_rng(2), keys, values)
        dk = result.delta_keys.tolist()
        dv = dict(zip(dk, result.delta_values.tolist()))
        # Two affected keys, k and k+1 (mod 2^64), opposite deltas.
        assert len(dk) == 2
        lo, hi = sorted(dk)
        assert hi == lo + 1 or (lo == 0 and hi == 2**64 - 1)
        assert sum(dv.values()) == 0

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_kv_manipulator("Gremlin")


class TestSeqManipulators:
    @pytest.fixture(scope="class")
    def sequence(self):
        rng = np.random.default_rng(21)
        return rng.integers(1, 10**8, 500).astype(np.uint64)

    @pytest.mark.parametrize("name", sorted(PERM_MANIPULATORS))
    def test_apply_changes_exactly_one_position(self, name, sequence):
        man = get_seq_manipulator(name)
        for trial in range(10):
            result = man.apply(np.random.default_rng(trial), sequence)
            diff = np.flatnonzero(result.sequence != sequence)
            assert diff.size == 1
            i = diff[0]
            assert result.removed[0] == sequence[i]
            assert result.added[0] == result.sequence[i]
            assert result.removed[0] != result.added[0]

    @pytest.mark.parametrize("name", sorted(PERM_MANIPULATORS))
    def test_sample_change_matches_apply(self, name, sequence):
        man = get_seq_manipulator(name)
        a = man.sample_change(np.random.default_rng(9), sequence)
        b = man.apply(np.random.default_rng(9), sequence)
        assert a.removed[0] == b.removed[0]
        assert a.added[0] == b.added[0]

    def test_increment_adds_one(self, sequence):
        man = get_seq_manipulator("Increment")
        result = man.apply(np.random.default_rng(1), sequence)
        assert int(result.added[0]) == int(result.removed[0]) + 1

    def test_reset_resamples_zero_elements(self):
        man = get_seq_manipulator("Reset")
        seq = np.array([0, 0, 5, 0], dtype=np.uint64)
        for trial in range(10):
            result = man.apply(np.random.default_rng(trial), seq)
            assert result.removed[0] == 5
            assert result.added[0] == 0

    def test_set_equal_duplicates_existing_value(self, sequence):
        man = get_seq_manipulator("SetEqual")
        result = man.apply(np.random.default_rng(4), sequence)
        assert result.added[0] in sequence

    def test_bitflip_width(self):
        man = get_seq_manipulator("Bitflip", bit_width=4)
        seq = np.array([0], dtype=np.uint64)
        for trial in range(30):
            result = man.apply(np.random.default_rng(trial), seq)
            assert int(result.added[0]) < 16

    def test_degenerate_input_raises(self):
        man = get_seq_manipulator("SetEqual")
        # All-equal sequence: SetEqual can never introduce a fault.
        seq = np.full(4, 9, dtype=np.uint64)
        with pytest.raises(RuntimeError):
            man.apply(np.random.default_rng(0), seq)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_seq_manipulator("Gremlin")


class TestBatchedSampling:
    """Batched samplers must replay the scalar SplitMix streams exactly."""

    def _seeds(self, count):
        from repro.util.rng import derive_seed

        return np.array(
            [derive_seed(21, "trial", t) for t in range(count)], dtype=np.uint64
        )

    @pytest.mark.parametrize("name", sorted(SUM_MANIPULATORS))
    def test_kv_batch_matches_scalar_streams(self, name, workload):
        from repro.util.rng import SplitMixStream, SplitMixStreamBatch

        keys, values = workload
        man = get_kv_manipulator(name) if name != "RandKey" else get_kv_manipulator(
            name, key_domain=50
        )
        seeds = self._seeds(60)
        batch = man.sample_delta_batch(
            SplitMixStreamBatch(seeds), keys, values, trials=60
        )
        assert batch.trials == 60
        for t in range(60):
            effect = man.sample_delta(SplitMixStream(int(seeds[t])), keys, values)
            pick = batch.owner == t
            got = dict(
                zip(
                    batch.delta_keys[pick].tolist(),
                    batch.delta_values[pick].tolist(),
                )
            )
            expected = dict(
                zip(effect.delta_keys.tolist(), effect.delta_values.tolist())
            )
            assert got == expected, (name, t)

    @pytest.mark.parametrize("name", sorted(PERM_MANIPULATORS))
    def test_seq_batch_matches_scalar_streams(self, name):
        from repro.util.rng import SplitMixStream, SplitMixStreamBatch
        from repro.workloads.uniform import uniform_integers

        seq = uniform_integers(500, 10**3, seed=4)  # small universe → redraws
        seq[::41] = 0  # zeros make Reset redraw occasionally
        man = (
            get_seq_manipulator(name)
            if name != "Randomize"
            else get_seq_manipulator(name, universe=10**3)
        )
        seeds = self._seeds(60)
        batch = man.sample_change_batch(SplitMixStreamBatch(seeds), seq, trials=60)
        for t in range(60):
            change = man.sample_change(SplitMixStream(int(seeds[t])), seq)
            assert int(batch.removed[t]) == int(change.removed[0]), (name, t)
            assert int(batch.added[t]) == int(change.added[0]), (name, t)

    def test_trials_mismatch_rejected(self):
        from repro.util.rng import SplitMixStreamBatch

        man = get_kv_manipulator("IncKey")
        rng = SplitMixStreamBatch(self._seeds(4))
        with pytest.raises(ValueError):
            man.sample_delta_batch(
                rng, np.arange(8, dtype=np.uint64), np.ones(8, dtype=np.int64),
                trials=5,
            )


class TestRngBinding:
    """The ``rng=`` plumbing: int seeds, bound generators, overrides."""

    def test_bound_int_seed_is_reproducible(self, workload):
        keys, values = workload
        a = get_kv_manipulator("Bitflip", rng=7).apply(None, keys, values)
        b = get_kv_manipulator("Bitflip", rng=7).apply(None, keys, values)
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.values, b.values)
        assert np.array_equal(a.delta_keys, b.delta_keys)
        assert np.array_equal(a.delta_values, b.delta_values)

    def test_per_call_int_matches_default_generator(self, workload):
        from repro.util.rng import default_generator

        keys, values = workload
        man = get_kv_manipulator("IncKey")
        via_int = man.apply(42, keys, values)
        via_gen = man.apply(default_generator(42), keys, values)
        assert np.array_equal(via_int.delta_keys, via_gen.delta_keys)
        assert np.array_equal(via_int.delta_values, via_gen.delta_values)

    def test_per_call_rng_overrides_bound(self, workload):
        keys, values = workload
        bound = get_kv_manipulator("Bitflip", rng=1)
        override = bound.apply(99, keys, values)
        fresh = get_kv_manipulator("Bitflip").apply(99, keys, values)
        assert np.array_equal(override.delta_keys, fresh.delta_keys)
        assert np.array_equal(override.delta_values, fresh.delta_values)

    def test_missing_rng_raises_with_name(self, workload):
        keys, values = workload
        man = get_kv_manipulator("SwitchValues")
        with pytest.raises(ValueError, match="SwitchValues"):
            man.apply(None, keys, values)
        with pytest.raises(ValueError, match="rng="):
            man.sample_delta(None, keys, values)

    def test_seq_manipulators_accept_rng(self):
        seq = np.arange(1, 200, dtype=np.uint64)
        a = get_seq_manipulator("Bitflip", rng=5).apply(None, seq)
        b = get_seq_manipulator("Bitflip", rng=5).apply(None, seq)
        assert np.array_equal(a.sequence, b.sequence)
        man = get_seq_manipulator("Increment")
        with pytest.raises(ValueError, match="rng="):
            man.apply(None, seq)

    def test_every_registry_factory_accepts_rng_kwarg(self, workload):
        keys, values = workload
        for name in SUM_MANIPULATORS:
            kwargs = {"rng": 3}
            if name == "RandKey":
                kwargs["key_domain"] = 50
            man = get_kv_manipulator(name, **kwargs)
            assert man.apply(None, keys, values).delta_keys.size > 0
        seq = np.arange(1, 100, dtype=np.uint64)
        for name in PERM_MANIPULATORS:
            kwargs = {"rng": 3}
            if name == "Randomize":
                kwargs["universe"] = 10**3
            man = get_seq_manipulator(name, **kwargs)
            assert man.apply(None, seq).sequence.size == seq.size

    def test_unknown_name_lists_sorted_roster(self):
        with pytest.raises(KeyError) as kv_err:
            get_kv_manipulator("Gremlin")
        assert str(sorted(SUM_MANIPULATORS)) in str(kv_err.value)
        with pytest.raises(KeyError) as seq_err:
            get_seq_manipulator("Gremlin")
        assert str(sorted(PERM_MANIPULATORS)) in str(seq_err.value)

"""Tests for bit-parallel bucket assignment (§4 Optimizations)."""

import numpy as np
import pytest

from repro.hashing.bitgroups import BucketAssigner, split_bit_groups
from repro.hashing.families import get_family


class TestSplitBitGroups:
    def test_reconstruction(self):
        h = np.array([0b110100101101], dtype=np.uint64)
        groups = split_bit_groups(h, group_bits=3, num_groups=4, total_bits=12)
        reassembled = sum(
            int(g[0]) << (3 * i) for i, g in enumerate(groups)
        )
        assert reassembled == 0b110100101101

    def test_group_bounds(self):
        h = np.arange(100, dtype=np.uint64) * np.uint64(0x9E3779B9)
        for g in split_bit_groups(h, 4, 8, 32):
            assert int(g.max()) < 16

    def test_too_many_groups_raises(self):
        h = np.array([1], dtype=np.uint64)
        with pytest.raises(ValueError):
            split_bit_groups(h, group_bits=8, num_groups=5, total_bits=32)

    def test_zero_group_bits_raises(self):
        with pytest.raises(ValueError):
            split_bit_groups(np.array([1], dtype=np.uint64), 0, 1, 32)


class TestBucketAssigner:
    def test_shape_and_range(self):
        ba = BucketAssigner(get_family("Mix"), d=16, iterations=6, seed=1)
        keys = np.arange(500, dtype=np.uint64)
        idx = ba.assign(keys)
        assert idx.shape == (6, 500)
        assert idx.min() >= 0 and idx.max() < 16

    def test_bit_parallel_single_evaluation(self):
        """One 64-bit hash yields 16 four-bit groups (the §7.1 trick)."""
        ba = BucketAssigner(get_family("Tab64"), d=16, iterations=16, seed=1)
        assert ba.bit_parallel
        assert ba.num_hash_evaluations == 1

    def test_bit_parallel_overflow_to_second_evaluation(self):
        ba = BucketAssigner(get_family("Tab64"), d=16, iterations=17, seed=1)
        assert ba.num_hash_evaluations == 2

    def test_crc_32bit_budget(self):
        # CRC provides 32 bits -> 8 groups of 4 bits per evaluation.
        ba = BucketAssigner(get_family("CRC"), d=16, iterations=8, seed=1)
        assert ba.num_hash_evaluations == 1
        ba = BucketAssigner(get_family("CRC"), d=16, iterations=9, seed=1)
        assert ba.num_hash_evaluations == 2

    def test_general_d_one_evaluation_per_iteration(self):
        ba = BucketAssigner(get_family("Mix"), d=37, iterations=3, seed=1)
        assert not ba.bit_parallel
        assert ba.num_hash_evaluations == 3
        idx = ba.assign(np.arange(100, dtype=np.uint64))
        assert idx.max() < 37

    def test_iterations_are_distinct_functions(self):
        ba = BucketAssigner(get_family("Mix"), d=64, iterations=4, seed=1)
        idx = ba.assign(np.arange(200, dtype=np.uint64))
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.array_equal(idx[i], idx[j])

    def test_deterministic(self):
        keys = np.arange(50, dtype=np.uint64)
        a = BucketAssigner(get_family("Tab"), 8, 4, seed=9).assign(keys)
        b = BucketAssigner(get_family("Tab"), 8, 4, seed=9).assign(keys)
        assert np.array_equal(a, b)

    def test_scalar_matches_vector(self):
        ba = BucketAssigner(get_family("Mix"), d=8, iterations=5, seed=2)
        keys = np.array([17, 99], dtype=np.uint64)
        idx = ba.assign(keys)
        assert ba.assign_one(17) == idx[:, 0].tolist()

    def test_rejects_bad_parameters(self):
        fam = get_family("Mix")
        with pytest.raises(ValueError):
            BucketAssigner(fam, d=1, iterations=1, seed=0)
        with pytest.raises(ValueError):
            BucketAssigner(fam, d=4, iterations=0, seed=0)

    def test_bucket_distribution_roughly_uniform(self):
        ba = BucketAssigner(get_family("Tab64"), d=8, iterations=1, seed=3)
        idx = ba.assign(np.arange(80_000, dtype=np.uint64))
        counts = np.bincount(idx[0], minlength=8)
        assert counts.min() > 8_500 and counts.max() < 11_500


class TestAssignBatch:
    @pytest.mark.parametrize("d", [16, 17])
    @pytest.mark.parametrize("family_name", ["CRC", "Tab", "Mix"])
    def test_matches_per_seed_assigners(self, family_name, d):
        fam = get_family(family_name)
        rng = np.random.default_rng(7)
        seeds = rng.integers(0, 2**63, 5, dtype=np.uint64)
        keys = rng.integers(0, 2**64, 30, dtype=np.uint64)
        owner = rng.integers(0, 5, 30).astype(np.intp)
        assigner = BucketAssigner(fam, d, 8, seed=0)
        got = assigner.assign_batch(seeds, keys, owner)
        assert got.shape == (8, 30)
        for t in range(5):
            pick = owner == t
            expected = BucketAssigner(fam, d, 8, int(seeds[t])).assign(
                keys[pick]
            )
            assert np.array_equal(got[:, pick], expected), (family_name, d, t)

"""Tests for the software CRC-32C implementation."""

import numpy as np
import pytest

from repro.hashing.crc32c import (
    crc32c_bytes,
    crc32c_checksum,
    crc32c_u64,
    crc32c_u64_array,
)


class TestKnownVectors:
    def test_rfc_vector(self):
        # RFC 3720 / common library test vector.
        assert crc32c_checksum(b"123456789") == 0xE3069283

    def test_empty(self):
        assert crc32c_checksum(b"") == 0

    def test_all_zeros_32(self):
        # iSCSI test vector: 32 bytes of zeros.
        assert crc32c_checksum(bytes(32)) == 0x8A9136AA

    def test_all_ones_32(self):
        assert crc32c_checksum(b"\xff" * 32) == 0x62A8AB43


class TestScalar:
    def test_deterministic(self):
        assert crc32c_u64(12345, 7) == crc32c_u64(12345, 7)

    def test_seed_changes_value(self):
        assert crc32c_u64(12345, 1) != crc32c_u64(12345, 2)

    def test_distinct_keys(self):
        outs = {crc32c_u64(k) for k in range(2000)}
        assert len(outs) == 2000  # CRC is injective on short inputs

    def test_matches_bytes_form(self):
        x = 0xDEADBEEF12345678
        assert crc32c_u64(x, 5) == crc32c_bytes(x.to_bytes(8, "little"), 5)


class TestVectorized:
    def test_matches_scalar(self):
        keys = np.array(
            [0, 1, 255, 256, 2**32 - 1, 2**32, 2**63, 2**64 - 1],
            dtype=np.uint64,
        )
        for seed in (0, 1, 0xFFFFFFFF):
            vec = crc32c_u64_array(keys, seed)
            for k, v in zip(keys, vec):
                assert crc32c_u64(int(k), seed) == int(v)

    def test_nbytes_variants(self):
        keys = np.array([0, 1, 99999999], dtype=np.uint64)
        for nbytes in (1, 2, 4, 8):
            vec = crc32c_u64_array(keys, 3, nbytes=nbytes)
            for k, v in zip(keys, vec):
                data = int(k).to_bytes(8, "little")[:nbytes]
                assert crc32c_bytes(data, 3) == int(v)

    def test_four_byte_differs_from_eight(self):
        keys = np.array([12345], dtype=np.uint64)
        assert crc32c_u64_array(keys, 0, 4)[0] != crc32c_u64_array(keys, 0, 8)[0]

    def test_rejects_bad_nbytes(self):
        with pytest.raises(ValueError):
            crc32c_u64_array(np.array([1], dtype=np.uint64), 0, nbytes=0)
        with pytest.raises(ValueError):
            crc32c_u64_array(np.array([1], dtype=np.uint64), 0, nbytes=9)

    def test_empty_array(self):
        assert crc32c_u64_array(np.array([], dtype=np.uint64)).size == 0


class TestLinearity:
    """CRC is affine over GF(2) — the structural root of the paper's
    observed Increment anomaly (crc(x) ^ crc(x+1) is input-independent for
    fixed carry length)."""

    def test_difference_pattern_constant_for_even_inputs(self):
        pattern = None
        for x in (0, 2, 4, 1000, 123456):
            d = crc32c_u64(x) ^ crc32c_u64(x + 1)
            if pattern is None:
                pattern = d
            assert d == pattern

    def test_seed_cancels_in_difference(self):
        for seed in (0, 7, 0xABCDEF):
            d = crc32c_u64(10, seed) ^ crc32c_u64(11, seed)
            assert d == crc32c_u64(10, 0) ^ crc32c_u64(11, 0)


class TestPerElementSeeds:
    def test_array_seed_matches_scalar_seed(self):
        keys = np.array([0, 1, 123456789, 2**48 + 7], dtype=np.uint64)
        seeds = np.array([5, 0xFFFFFFFF, 2**40, 9], dtype=np.uint64)
        for nbytes in (4, 8):
            got = crc32c_u64_array(keys, seeds, nbytes)
            for i in range(keys.size):
                exp = crc32c_u64_array(
                    keys[i : i + 1], int(seeds[i]), nbytes
                )[0]
                assert int(got[i]) == int(exp)

    def test_scalar_seed_broadcasts(self):
        keys = np.arange(10, dtype=np.uint64)
        assert np.array_equal(
            crc32c_u64_array(keys, 7), crc32c_u64_array(keys, np.uint64(7))
        )

"""Tests for the CRC affinity kernel (one hash pass, many seed lanes).

The load-bearing identity: CRC-32C is GF(2)-linear in its initial state,
``crc(x, s) = crc(x, 0) ⊕ crc(0^len, s)``, so every seed lane of the
multi-seed checkers follows from ONE table-lookup pass plus a per-seed
XOR constant.  Everything here checks bit-identity against the per-seed
kernels that predate the affinity path.
"""

import numpy as np
import pytest

from repro.hashing.bitgroups import assign_buckets_batch, iter_bucket_blocks
from repro.hashing.crc32c import (
    _TABLE,
    crc32c_seed_constants,
    crc32c_u64_array,
    crc32c_zero_advance,
)
from repro.hashing.families import (
    AffineLaneHasher,
    HashFamily,
    get_family,
    hash_lanes,
)


def _advance_bytewise(states: np.ndarray, length: int) -> np.ndarray:
    crc = states.astype(np.uint32, copy=True)
    for _ in range(length):
        crc = (crc >> np.uint32(8)) ^ _TABLE[crc & np.uint32(0xFF)]
    return crc


class TestZeroAdvance:
    @pytest.mark.parametrize(
        "length", [0, 1, 3, 8, 64, 65, 129, 1_000, 123_457]
    )
    def test_matches_bytewise_loop(self, length, rng):
        states = rng.integers(0, 2**32, 16).astype(np.uint32)
        got = crc32c_zero_advance(states, length)
        assert np.array_equal(got, _advance_bytewise(states, length))

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            crc32c_zero_advance(np.zeros(1, dtype=np.uint32), -1)

    def test_zero_length_is_identity_copy(self):
        states = np.array([1, 2, 3], dtype=np.uint32)
        out = crc32c_zero_advance(states, 0)
        assert np.array_equal(out, states)
        out[0] = 99
        assert states[0] == 1  # a copy, not a view

    def test_linearity_in_state(self, rng):
        # advance(a ⊕ b) = advance(a) ⊕ advance(b): the property the
        # matrix-power path relies on.
        a = rng.integers(0, 2**32, 8).astype(np.uint32)
        b = rng.integers(0, 2**32, 8).astype(np.uint32)
        for length in (5, 777):
            assert np.array_equal(
                crc32c_zero_advance(a ^ b, length),
                crc32c_zero_advance(a, length)
                ^ crc32c_zero_advance(b, length),
            )


class TestAffinityIdentity:
    @pytest.mark.parametrize("nbytes", [1, 4, 8])
    def test_constants_reproduce_seeded_crc(self, nbytes, rng):
        """crc(x, s) == crc(x, 0) ⊕ c(s) for every seed and width."""
        keys = rng.integers(0, 2**63, 500).astype(np.uint64)
        seeds = rng.integers(0, 2**64, 33, dtype=np.uint64)
        base = crc32c_u64_array(keys, 0, nbytes).astype(np.uint64)
        consts = crc32c_seed_constants(seeds, nbytes)
        for t, seed in enumerate(seeds):
            ref = crc32c_u64_array(
                keys, int(seed) & 0xFFFFFFFF, nbytes
            ).astype(np.uint64)
            assert np.array_equal(base ^ consts[t], ref)

    def test_constants_accept_any_shape(self, rng):
        seeds = rng.integers(0, 2**64, (3, 5), dtype=np.uint64)
        consts = crc32c_seed_constants(seeds, 8)
        assert consts.shape == (3, 5)
        assert np.array_equal(
            consts.ravel(), crc32c_seed_constants(seeds.ravel(), 8)
        )

    @pytest.mark.parametrize("family", ["CRC", "CRC4"])
    def test_family_hasher_lanes_match_instances(self, family, rng):
        fam = get_family(family)
        keys = rng.integers(0, 2**64, 300, dtype=np.uint64)
        seeds = rng.integers(0, 2**64, 11, dtype=np.uint64)
        hasher = fam.multiseed_hasher(keys)
        assert hasher is not None
        lanes = hash_lanes(fam, seeds, keys, hasher)
        for t, seed in enumerate(seeds):
            assert np.array_equal(
                lanes[t], fam.instance(int(seed)).hash_array(keys)
            )

    @pytest.mark.parametrize("family", ["Mix", "Tab", "Tab64", "MShift"])
    def test_non_affine_families_have_non_affine_hashers(self, family):
        # Since the LaneHasher generalization every registered family has
        # a lane hasher; only CRC's exposes the affine structure.
        fam = get_family(family)
        hasher = fam.multiseed_hasher(np.arange(4, dtype=np.uint64))
        assert hasher is not None
        assert not isinstance(hasher, AffineLaneHasher)

    def test_kernel_less_family_has_no_hasher(self):
        fam = HashFamily(
            "MixBare",
            get_family("Mix")._factory,
            64,
            "clone without lane kernel",
        )
        assert fam.multiseed_hasher(np.arange(4, dtype=np.uint64)) is None

    @pytest.mark.parametrize("family", ["Mix", "CRC"])
    def test_hash_lanes_tiled_fallback_matches_instances(self, family, rng):
        src = get_family(family)
        # A kernel-less clone forces the chunked tiled fallback; the
        # registered families themselves never reach it.
        fam = HashFamily(
            family + "Bare", src._factory, src.bits, "no lane kernel",
            batch_kernel=src._batch_kernel,
        )
        keys = rng.integers(0, 2**64, 200, dtype=np.uint64)
        seeds = rng.integers(0, 2**64, 7, dtype=np.uint64)
        lanes = hash_lanes(fam, seeds, keys)  # no hasher: tiled path
        for t, seed in enumerate(seeds):
            assert np.array_equal(
                lanes[t], src.instance(int(seed)).hash_array(keys)
            )


class TestBucketBlocksAffinity:
    """The affinity path of iter_bucket_blocks is invisible to consumers."""

    def _reference_blocks(self, family, d, iterations, seeds, keys, chunk):
        # The pre-affinity implementation: tile the keys per seed block and
        # hash every lane through the batched per-seed kernel.
        k = keys.size
        per_block = max(1, chunk // max(k, 1))
        for start in range(0, seeds.size, per_block):
            count = min(per_block, seeds.size - start)
            owner = np.repeat(np.arange(count, dtype=np.intp), k)
            yield start, count, assign_buckets_batch(
                family,
                d,
                iterations,
                seeds[start : start + count],
                np.tile(keys, count),
                owner,
            )

    @pytest.mark.parametrize("family", ["CRC", "CRC4", "Mix", "Tab64"])
    @pytest.mark.parametrize("d", [2, 16, 37, 64])
    @pytest.mark.parametrize("iterations", [1, 3, 8, 9])
    def test_blocks_match_per_seed_kernels(self, family, d, iterations, rng):
        fam = get_family(family)
        keys = rng.integers(0, 2**64, 400, dtype=np.uint64)
        seeds = rng.integers(0, 2**64, 13, dtype=np.uint64)
        got = list(iter_bucket_blocks(fam, d, iterations, seeds, keys, 1500))
        ref = list(
            self._reference_blocks(fam, d, iterations, seeds, keys, 1500)
        )
        assert len(got) == len(ref) > 1  # chunking actually exercised
        for (s1, c1, b1), (s2, c2, b2) in zip(got, ref):
            assert (s1, c1) == (s2, c2)
            assert np.array_equal(b1, b2)

    def test_empty_keys(self):
        fam = get_family("CRC")
        seeds = np.arange(3, dtype=np.uint64)
        blocks = list(
            iter_bucket_blocks(
                fam, 16, 4, seeds, np.zeros(0, dtype=np.uint64)
            )
        )
        for _, count, buckets in blocks:
            assert buckets.shape == (4, 0)

    def test_iterations_below_groups_per_eval(self, rng):
        # iterations=2 < groups_per_eval=8 for d=16/32-bit CRC: only the
        # first two base groups may be touched.
        fam = get_family("CRC")
        keys = rng.integers(0, 2**64, 100, dtype=np.uint64)
        seeds = rng.integers(0, 2**64, 4, dtype=np.uint64)
        got = list(iter_bucket_blocks(fam, 16, 2, seeds, keys))
        ref = list(self._reference_blocks(fam, 16, 2, seeds, keys, 1 << 20))
        for (_, _, b1), (_, _, b2) in zip(got, ref):
            assert np.array_equal(b1, b2)

"""Tests for the hash-family registry."""

import numpy as np
import pytest

from repro.hashing.families import get_family, list_families


class TestRegistry:
    def test_known_families(self):
        names = list_families()
        for expected in ("CRC", "CRC4", "Tab", "Tab64", "Mix", "MShift"):
            assert expected in names

    def test_case_insensitive(self):
        assert get_family("crc").name == "CRC"
        assert get_family("TAB64").name == "Tab64"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_family("nope")

    @pytest.mark.parametrize("name", ["CRC", "CRC4", "Tab", "Tab64", "Mix", "MShift"])
    def test_instances_work(self, name):
        fam = get_family(name)
        fn = fam.instance(seed=42)
        keys = np.array([0, 1, 12345], dtype=np.uint64)
        out = fn.hash_array(keys)
        assert out.shape == keys.shape
        # Output fits the family's declared bit width.
        assert int(out.max()) < (1 << fam.bits)
        # Scalar agrees with vector.
        for k, v in zip(keys, out):
            assert fn.hash_one(int(k)) == int(v)

    @pytest.mark.parametrize("name", ["CRC", "CRC4", "Tab", "Tab64", "Mix"])
    def test_seeding_gives_distinct_functions(self, name):
        fam = get_family(name)
        keys = np.arange(64, dtype=np.uint64)
        a = fam.instance(1).hash_array(keys)
        b = fam.instance(2).hash_array(keys)
        assert not np.array_equal(a, b)

    def test_crc4_differs_from_crc(self):
        keys = np.array([123456], dtype=np.uint64)
        a = get_family("CRC").instance(0).hash_array(keys)
        b = get_family("CRC4").instance(0).hash_array(keys)
        assert a[0] != b[0]


class TestInstanceCache:
    def test_same_seed_returns_cached_object(self):
        fam = get_family("Tab")
        assert fam.instance(4242) is fam.instance(4242)

    def test_cached_instances_stay_correct(self):
        fam = get_family("Tab64")
        keys = np.arange(32, dtype=np.uint64)
        first = fam.instance(77).hash_array(keys)
        again = fam.instance(77).hash_array(keys)
        assert np.array_equal(first, again)


class TestBatchedFamilyHash:
    @pytest.mark.parametrize(
        "name", ["CRC", "CRC4", "Tab", "Tab64", "Mix", "MShift"]
    )
    def test_hash_array_batch_matches_instances(self, name):
        fam = get_family(name)
        rng = np.random.default_rng(11)
        seeds = rng.integers(0, 2**63, 6, dtype=np.uint64)
        keys = rng.integers(0, 2**64, 40, dtype=np.uint64)
        owner = rng.integers(0, 6, 40).astype(np.intp)
        got = fam.hash_array_batch(seeds, owner, keys)
        for i in range(keys.size):
            exp = fam.instance(int(seeds[owner[i]])).hash_array(
                keys[i : i + 1]
            )[0]
            assert int(got[i]) == int(exp), (name, i)

    def test_generic_fallback_matches_kernel(self):
        # Force the per-seed fallback path and compare with the kernel.
        fam = get_family("Mix")
        rng = np.random.default_rng(2)
        seeds = rng.integers(0, 2**63, 3, dtype=np.uint64)
        keys = rng.integers(0, 2**64, 20, dtype=np.uint64)
        owner = rng.integers(0, 3, 20).astype(np.intp)
        fast = fam.hash_array_batch(seeds, owner, keys)
        kernel, fam._batch_kernel = fam._batch_kernel, None
        try:
            slow = fam.hash_array_batch(seeds, owner, keys)
        finally:
            fam._batch_kernel = kernel
        assert np.array_equal(fast, slow)

"""Tests for carry-less multiplication and GF(2^64) arithmetic."""

import numpy as np
import pytest

from repro.hashing.gf2 import (
    clmul,
    gf64_mul,
    gf64_mul_vec,
    gf64_pow,
    gf64_product,
)


def _clmul_reference(a: int, b: int) -> int:
    out = 0
    for i in range(64):
        if (b >> i) & 1:
            out ^= a << i
    return out


class TestClmul:
    def test_against_reference(self, rng):
        for _ in range(50):
            a = int(rng.integers(0, 2**63)) * 2 + int(rng.integers(2))
            b = int(rng.integers(0, 2**63)) * 2 + int(rng.integers(2))
            assert clmul(a, b) == _clmul_reference(a, b)

    def test_identity_and_zero(self):
        assert clmul(0, 12345) == 0
        assert clmul(1, 12345) == 12345
        assert clmul(12345, 1) == 12345

    def test_commutative(self):
        assert clmul(0xABCDEF, 0x123456) == clmul(0x123456, 0xABCDEF)

    def test_shift_is_multiply_by_power_of_two(self):
        assert clmul(0xFF, 1 << 8) == 0xFF00


class TestGF64FieldAxioms:
    def test_identity(self, rng):
        for _ in range(20):
            a = int(rng.integers(0, 2**64, dtype=np.uint64))
            assert gf64_mul(a, 1) == a

    def test_zero_annihilates(self):
        assert gf64_mul(0xDEADBEEF, 0) == 0

    def test_commutative(self, rng):
        for _ in range(20):
            a = int(rng.integers(0, 2**64, dtype=np.uint64))
            b = int(rng.integers(0, 2**64, dtype=np.uint64))
            assert gf64_mul(a, b) == gf64_mul(b, a)

    def test_associative(self, rng):
        for _ in range(20):
            a, b, c = (int(rng.integers(0, 2**64, dtype=np.uint64)) for _ in range(3))
            assert gf64_mul(gf64_mul(a, b), c) == gf64_mul(a, gf64_mul(b, c))

    def test_distributive_over_xor(self, rng):
        for _ in range(20):
            a, b, c = (int(rng.integers(0, 2**64, dtype=np.uint64)) for _ in range(3))
            assert gf64_mul(a, b ^ c) == gf64_mul(a, b) ^ gf64_mul(a, c)

    def test_result_fits_64_bits(self, rng):
        for _ in range(50):
            a = int(rng.integers(0, 2**64, dtype=np.uint64))
            b = int(rng.integers(0, 2**64, dtype=np.uint64))
            assert 0 <= gf64_mul(a, b) < 2**64

    def test_no_zero_divisors(self, rng):
        """A field: nonzero · nonzero != 0."""
        for _ in range(50):
            a = int(rng.integers(1, 2**64, dtype=np.uint64))
            b = int(rng.integers(1, 2**64, dtype=np.uint64))
            assert gf64_mul(a, b) != 0

    def test_fermat_little_theorem(self):
        """a^(2^64 - 1) = 1 for a != 0 — exercises the full field order."""
        for a in (2, 3, 0xDEADBEEF, 2**63 + 1):
            assert gf64_pow(a, 2**64 - 1) == 1


class TestGF64Vectorized:
    def test_matches_scalar(self, rng):
        a = rng.integers(0, 2**63, 200).astype(np.uint64) * 2 + rng.integers(
            0, 2, 200
        ).astype(np.uint64)
        b = rng.integers(0, 2**63, 200).astype(np.uint64) * 2 + rng.integers(
            0, 2, 200
        ).astype(np.uint64)
        vec = gf64_mul_vec(a, b)
        for x, y, z in zip(a, b, vec):
            assert gf64_mul(int(x), int(y)) == int(z)


class TestGF64Product:
    def test_empty_is_one(self):
        assert gf64_product(np.array([], dtype=np.uint64)) == 1

    def test_single(self):
        assert gf64_product(np.array([42], dtype=np.uint64)) == 42

    def test_matches_scalar_fold(self, rng):
        vals = rng.integers(1, 2**64, 37, dtype=np.uint64)
        expected = 1
        for v in vals:
            expected = gf64_mul(expected, int(v))
        assert gf64_product(vals) == expected

    def test_order_invariant(self, rng):
        vals = rng.integers(1, 2**64, 64, dtype=np.uint64)
        shuffled = vals.copy()
        rng.shuffle(shuffled)
        assert gf64_product(vals) == gf64_product(shuffled)


class TestGF64Pow:
    def test_small_powers(self):
        a = 0x123456789
        assert gf64_pow(a, 0) == 1
        assert gf64_pow(a, 1) == a
        assert gf64_pow(a, 2) == gf64_mul(a, a)
        assert gf64_pow(a, 3) == gf64_mul(a, gf64_mul(a, a))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            gf64_pow(2, -1)

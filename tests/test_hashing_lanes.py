"""Property suite for the unified LaneHasher interface.

Every registered family must expose a lane hasher whose lanes are
bit-identical to per-seed ``instance(...).hash_array`` — across lane
counts, duplicate-heavy keys, output truncation, and awkward key-array
layouts — so no multi-seed consumer ever falls back to the tiled
per-seed path.  The stacked tabulation kernel and the chunked tiled
fallback (for custom, kernel-less families) get their own sections.
"""

import numpy as np
import pytest

from repro.core.multiseed import MultiSeedHashSumChecker, MultiSeedSumChecker
from repro.core.params import SumCheckConfig
from repro.hashing.families import (
    HashFamily,
    LaneHasher,
    get_family,
    hash_lanes,
    list_families,
)
from repro.hashing.tabulation import (
    StackedLaneHasher,
    TabulationHash,
    stacked_tabulation_tables,
    tabulation_lanes,
    tabulation_tables,
)

ALL_FAMILIES = list_families()
LANE_COUNTS = (1, 2, 32)


def _key_variants(rng):
    """Key arrays the lane kernels must handle identically to instances."""
    dup_heavy = rng.integers(0, 7, 400, dtype=np.uint64) * np.uint64(
        0x0101_0101_0101_0101
    )
    wide = rng.integers(0, 2**64, 301, dtype=np.uint64)
    non_contiguous = wide[::2]
    int64_view = wide.view(np.int64)  # includes values above 2^63
    return {
        "duplicate-heavy": dup_heavy,
        "full-width": wide,
        "non-contiguous": non_contiguous,
        "int64-view": int64_view,
        "empty": np.zeros(0, dtype=np.uint64),
    }


class TestLaneEquivalence:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    @pytest.mark.parametrize("num_seeds", LANE_COUNTS)
    def test_lanes_match_instances(self, family, num_seeds, rng):
        fam = get_family(family)
        seeds = rng.integers(0, 2**64, num_seeds, dtype=np.uint64)
        for label, keys in _key_variants(rng).items():
            as_u64 = np.asarray(keys, dtype=np.uint64).ravel()
            lanes = hash_lanes(fam, seeds, keys)
            assert lanes.shape == (num_seeds, as_u64.size), (family, label)
            for t, seed in enumerate(seeds):
                expected = fam.instance(int(seed)).hash_array(as_u64)
                assert np.array_equal(lanes[t], expected), (
                    family, label, t,
                )

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_no_registered_family_falls_through_to_tiling(self, family, rng):
        # The contract the multi-seed checkers rely on: every registered
        # family hands hash_lanes/iter_bucket_blocks a LaneHasher, so the
        # O(T·n) tiled path is reserved for custom registrations.
        fam = get_family(family)
        keys = rng.integers(0, 2**64, 64, dtype=np.uint64)
        hasher = fam.multiseed_hasher(keys)
        assert hasher is not None, f"{family} fell back to the tiled path"
        assert isinstance(hasher, LaneHasher)

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_hasher_reuse_across_seed_blocks(self, family, rng):
        # One hasher, many lanes() calls — the access pattern of
        # iter_bucket_blocks and fingerprints_condensed.
        fam = get_family(family)
        keys = rng.integers(0, 2**64, 100, dtype=np.uint64)
        hasher = fam.multiseed_hasher(keys)
        seeds = rng.integers(0, 2**64, 6, dtype=np.uint64)
        blocks = [hasher.lanes(seeds[i : i + 2]) for i in range(0, 6, 2)]
        assert np.array_equal(np.vstack(blocks), hash_lanes(fam, seeds, keys))

    def test_lanes_fit_family_bits(self, rng):
        keys = rng.integers(0, 2**64, 50, dtype=np.uint64)
        seeds = rng.integers(0, 2**64, 3, dtype=np.uint64)
        for family in ALL_FAMILIES:
            fam = get_family(family)
            lanes = hash_lanes(fam, seeds, keys)
            assert int(lanes.max(initial=0)) < (1 << fam.bits), family


class TestStackedTabulation:
    @pytest.mark.parametrize("num_tables,out_bits", [(4, 32), (8, 64), (8, 17)])
    def test_stacked_tables_match_per_seed_tables(self, num_tables, out_bits, rng):
        seeds = rng.integers(0, 2**64, 5, dtype=np.uint64)
        stacked = stacked_tabulation_tables(seeds, num_tables, out_bits)
        assert stacked.shape == (num_tables, 256, seeds.size)
        assert stacked.flags.c_contiguous
        for t, seed in enumerate(seeds):
            assert np.array_equal(
                stacked[..., t], tabulation_tables(int(seed), num_tables, out_bits)
            )

    @pytest.mark.parametrize("key_bits", [32, 64])
    @pytest.mark.parametrize("out_bits", [17, 32, 64])
    def test_lanes_match_instances_with_truncation(self, key_bits, out_bits, rng):
        seeds = rng.integers(0, 2**64, 7, dtype=np.uint64)
        keys = rng.integers(0, 2**64, 257, dtype=np.uint64)
        lanes = tabulation_lanes(seeds, keys, key_bits, out_bits)
        for t, seed in enumerate(seeds):
            fn = TabulationHash(int(seed), key_bits=key_bits, out_bits=out_bits)
            assert np.array_equal(lanes[t], fn.hash_array(keys))

    def test_lanes_cross_block_boundaries(self, rng):
        # More lane-matrix elements than one cache block: the chunked
        # gather must tile the key axis without seams.
        from repro.hashing.tabulation import _LANE_BLOCK_ELEMENTS

        num_seeds = 16
        n = 2 * (_LANE_BLOCK_ELEMENTS // num_seeds) + 17
        seeds = rng.integers(0, 2**64, num_seeds, dtype=np.uint64)
        keys = rng.integers(0, 2**64, n, dtype=np.uint64)
        lanes = tabulation_lanes(seeds, keys, 64, 64)
        hasher = StackedLaneHasher(keys, 64, 64)
        assert np.array_equal(lanes, hasher.lanes(seeds))
        spot = [0, n // 2, n - 1]
        for t in (0, num_seeds - 1):
            fn = TabulationHash(int(seeds[t]), key_bits=64, out_bits=64)
            for i in spot:
                assert int(lanes[t, i]) == fn.hash_one(int(keys[i]))

    def test_empty_keys(self, rng):
        seeds = rng.integers(0, 2**64, 3, dtype=np.uint64)
        lanes = tabulation_lanes(seeds, np.zeros(0, dtype=np.uint64))
        assert lanes.shape == (3, 0)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            StackedLaneHasher(np.zeros(1, dtype=np.uint64), key_bits=48)
        with pytest.raises(ValueError):
            StackedLaneHasher(np.zeros(1, dtype=np.uint64), out_bits=0)


class TestChunkedTiledFallback:
    def _spy_family(self, sizes):
        src = get_family("Mix")

        def spy_kernel(seeds, owner, keys):
            sizes.append(keys.size)
            return src._batch_kernel(seeds, owner, keys)

        return HashFamily(
            "MixSpy", src._factory, 64, "kernel-less spy",
            batch_kernel=spy_kernel,
        )

    def test_fallback_is_memory_bounded(self, rng):
        # The fallback must chunk over seeds: peak tiled-key scratch stays
        # at chunk_elements, not seeds.size * keys.size.
        sizes = []
        fam = self._spy_family(sizes)
        src = get_family("Mix")
        keys = rng.integers(0, 2**64, 100, dtype=np.uint64)
        seeds = rng.integers(0, 2**64, 37, dtype=np.uint64)
        lanes = hash_lanes(fam, seeds, keys, chunk_elements=250)
        assert max(sizes) <= 250
        assert len(sizes) == -(-37 // (250 // 100))  # ceil(T / seeds-per-block)
        for t, seed in enumerate(seeds):
            assert np.array_equal(
                lanes[t], src.instance(int(seed)).hash_array(keys)
            )

    def test_fallback_chunk_smaller_than_keys(self, rng):
        # chunk_elements below one key row still makes progress, one seed
        # at a time.
        sizes = []
        fam = self._spy_family(sizes)
        keys = rng.integers(0, 2**64, 50, dtype=np.uint64)
        seeds = rng.integers(0, 2**64, 3, dtype=np.uint64)
        lanes = hash_lanes(fam, seeds, keys, chunk_elements=10)
        assert max(sizes) == 50 and len(sizes) == 3
        assert lanes.shape == (3, 50)

    def test_fallback_empty_keys(self):
        fam = self._spy_family([])
        lanes = hash_lanes(fam, np.arange(4, dtype=np.uint64),
                           np.zeros(0, dtype=np.uint64))
        assert lanes.shape == (4, 0)

    def test_rejects_bad_chunk(self, rng):
        fam = self._spy_family([])
        with pytest.raises(ValueError):
            hash_lanes(
                fam,
                np.arange(2, dtype=np.uint64),
                np.arange(4, dtype=np.uint64),
                chunk_elements=0,
            )


class TestDuplicateSeedsStillRejected:
    """The δ^T guarantee needs distinct seeds — end-to-end, post-refactor."""

    def test_multiseed_sum_checker_rejects_duplicates(self):
        cfg = SumCheckConfig(iterations=2, d=4, rhat=1 << 10)
        with pytest.raises(ValueError, match="distinct"):
            MultiSeedSumChecker(cfg, np.array([7, 7], dtype=np.uint64))

    def test_multiseed_hashsum_checker_rejects_duplicates(self):
        with pytest.raises(ValueError, match="distinct"):
            MultiSeedHashSumChecker(np.array([3, 5, 3], dtype=np.uint64))

    @pytest.mark.parametrize("family", ["Tab", "Tab64", "CRC", "Mix"])
    def test_distinct_seeds_accepted_per_family(self, family):
        cfg = SumCheckConfig(
            iterations=2, d=4, rhat=1 << 10, hash_family=family
        )
        checker = MultiSeedSumChecker(cfg, np.array([1, 2], dtype=np.uint64))
        assert checker.num_seeds == 2

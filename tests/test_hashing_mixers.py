"""Tests for SplitMix and multiply-shift hash functions."""

import numpy as np
import pytest

from repro.hashing.mixers import MultiplyShiftHash, SplitMixHash


class TestSplitMixHash:
    def test_scalar_matches_vector(self):
        h = SplitMixHash(99, out_bits=64)
        keys = np.array([0, 1, 2**63, 2**64 - 1], dtype=np.uint64)
        vec = h.hash_array(keys)
        for k, v in zip(keys, vec):
            assert h.hash_one(int(k)) == int(v)

    def test_truncation(self):
        h = SplitMixHash(3, out_bits=8)
        keys = np.arange(5000, dtype=np.uint64)
        assert int(h.hash_array(keys).max()) < 256

    def test_seed_sensitivity(self):
        keys = np.arange(100, dtype=np.uint64)
        assert not np.array_equal(
            SplitMixHash(1).hash_array(keys), SplitMixHash(2).hash_array(keys)
        )

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            SplitMixHash(1, out_bits=0)
        with pytest.raises(ValueError):
            SplitMixHash(1, out_bits=65)

    def test_collision_free_on_small_domain(self):
        h = SplitMixHash(5, out_bits=64)
        outs = h.hash_array(np.arange(10_000, dtype=np.uint64))
        assert len(np.unique(outs)) == 10_000  # permutation of 64-bit space


class TestMultiplyShiftHash:
    def test_scalar_matches_vector(self):
        h = MultiplyShiftHash(17, out_bits=16)
        keys = np.array([0, 1, 999, 2**50], dtype=np.uint64)
        vec = h.hash_array(keys)
        for k, v in zip(keys, vec):
            assert h.hash_one(int(k)) == int(v)

    def test_output_range(self):
        h = MultiplyShiftHash(7, out_bits=10)
        keys = np.arange(10_000, dtype=np.uint64)
        assert int(h.hash_array(keys).max()) < 1024

    def test_multiplier_is_odd(self):
        for seed in range(20):
            assert MultiplyShiftHash(seed).multiplier % 2 == 1

    def test_zero_maps_to_zero(self):
        # Structural weakness of multiply-shift (why it is ablation-only).
        assert MultiplyShiftHash(3).hash_one(0) == 0

"""Tests for primality testing and prime search (Lemma 5 substrate)."""

import pytest

from repro.hashing.primes import (
    bertrand_prime,
    is_prime,
    next_prime,
    random_prime_in_range,
)

_SMALL_PRIMES = {
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97,
}


class TestIsPrime:
    def test_small_numbers(self):
        for n in range(100):
            assert is_prime(n) == (n in _SMALL_PRIMES)

    def test_carmichael_numbers_rejected(self):
        # Fermat pseudoprimes that fool weak tests.
        for n in (561, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265):
            assert not is_prime(n)

    def test_large_known_primes(self):
        assert is_prime(2**31 - 1)  # Mersenne
        assert is_prime(2**61 - 1)  # Mersenne
        assert is_prime((1 << 32) + 15)

    def test_large_known_composites(self):
        assert not is_prime(2**32 - 1)  # 3 · 5 · 17 · 257 · 65537
        assert not is_prime((2**31 - 1) * (2**31 - 1))

    def test_negative_and_edge(self):
        assert not is_prime(-7)
        assert not is_prime(0)
        assert not is_prime(1)


class TestNextPrime:
    def test_values(self):
        assert next_prime(0) == 2
        assert next_prime(2) == 2
        assert next_prime(3) == 3
        assert next_prime(4) == 5
        assert next_prime(90) == 97

    def test_result_is_prime_and_minimal(self):
        for n in (10**6, 10**9, 2**32):
            p = next_prime(n)
            assert is_prime(p) and p >= n
            assert not any(is_prime(q) for q in range(n, p))


class TestBertrandPrime:
    @pytest.mark.parametrize("w", [2, 3, 8, 16, 31, 32, 61, 64])
    def test_in_interval(self, w):
        p = bertrand_prime(w)
        assert (1 << (w - 1)) <= p <= (1 << w)
        assert is_prime(p)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            bertrand_prime(1)


class TestRandomPrimeInRange:
    def test_in_range_and_prime(self):
        for seed in range(10):
            p = random_prime_in_range(10**6, 2 * 10**6, seed)
            assert 10**6 <= p <= 2 * 10**6
            assert is_prime(p)

    def test_seed_variation(self):
        primes = {random_prime_in_range(10**9, 2 * 10**9, s) for s in range(8)}
        assert len(primes) > 1

    def test_tight_range(self):
        assert random_prime_in_range(97, 97, 0) == 97

    def test_empty_range_raises(self):
        with pytest.raises(ValueError):
            random_prime_in_range(90, 96, 0)  # no prime in [90, 96]
        with pytest.raises(ValueError):
            random_prime_in_range(10, 5, 0)

"""Tests for tabulation hashing."""

import numpy as np
import pytest

from repro.hashing.tabulation import TabulationHash, tabulation_tables


class TestTables:
    def test_shape(self):
        t = tabulation_tables(1, 4)
        assert t.shape == (4, 256)

    def test_deterministic(self):
        assert np.array_equal(tabulation_tables(9, 8), tabulation_tables(9, 8))

    def test_seed_sensitivity(self):
        assert not np.array_equal(tabulation_tables(1, 4), tabulation_tables(2, 4))

    def test_out_bits_mask(self):
        t = tabulation_tables(1, 4, out_bits=12)
        assert int(t.max()) < (1 << 12)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            tabulation_tables(1, 0)
        with pytest.raises(ValueError):
            tabulation_tables(1, 9)
        with pytest.raises(ValueError):
            tabulation_tables(1, 4, out_bits=0)


class TestTabulationHash:
    def test_scalar_matches_vector(self):
        th = TabulationHash(7, key_bits=64, out_bits=32)
        keys = np.array([0, 1, 256, 2**40, 2**64 - 1], dtype=np.uint64)
        vec = th.hash_array(keys)
        for k, v in zip(keys, vec):
            assert th.hash_one(int(k)) == int(v)

    def test_32bit_variant_uses_four_tables(self):
        th = TabulationHash(7, key_bits=32)
        assert th.num_tables == 4
        assert TabulationHash(7, key_bits=64).num_tables == 8

    def test_rejects_other_key_bits(self):
        with pytest.raises(ValueError):
            TabulationHash(7, key_bits=48)

    def test_seed_changes_function(self):
        keys = np.arange(100, dtype=np.uint64)
        a = TabulationHash(1).hash_array(keys)
        b = TabulationHash(2).hash_array(keys)
        assert not np.array_equal(a, b)

    def test_deterministic(self):
        keys = np.arange(50, dtype=np.uint64)
        assert np.array_equal(
            TabulationHash(5).hash_array(keys), TabulationHash(5).hash_array(keys)
        )

    def test_output_within_bits(self):
        th = TabulationHash(3, out_bits=16)
        keys = np.arange(1000, dtype=np.uint64)
        assert int(th.hash_array(keys).max()) < (1 << 16)

    def test_xor_structure(self):
        """h(x) is the XOR of per-byte table entries (defining property)."""
        th = TabulationHash(11, key_bits=32, out_bits=32)
        key = 0x0403_0201
        expected = (
            int(th.tables[0][0x01])
            ^ int(th.tables[1][0x02])
            ^ int(th.tables[2][0x03])
            ^ int(th.tables[3][0x04])
        )
        assert th.hash_one(key) == expected

    def test_uniformity_rough(self):
        """Bucket counts over 64 buckets stay near uniform (3-independence)."""
        th = TabulationHash(13, out_bits=32)
        keys = np.arange(64_000, dtype=np.uint64)
        buckets = th.hash_array(keys) % np.uint64(64)
        counts = np.bincount(buckets.astype(np.intp), minlength=64)
        assert counts.min() > 700 and counts.max() < 1300


class TestBatchedTables:
    def test_stack_matches_scalar_tables(self):
        from repro.hashing.tabulation import tabulation_tables_batch

        seeds = np.array([0, 1, 999, 2**63 + 5], dtype=np.uint64)
        stack = tabulation_tables_batch(seeds, 4, 32)
        assert stack.shape == (4, 4, 256)
        for t, s in enumerate(seeds):
            assert np.array_equal(stack[t], tabulation_tables(int(s), 4, 32))

    def test_rejects_bad_args(self):
        from repro.hashing.tabulation import tabulation_tables_batch

        seeds = np.arange(2, dtype=np.uint64)
        with pytest.raises(ValueError):
            tabulation_tables_batch(seeds, 0)
        with pytest.raises(ValueError):
            tabulation_tables_batch(seeds, 4, out_bits=65)


class TestBatchedHash:
    @pytest.mark.parametrize("key_bits,out_bits", [(32, 32), (64, 64)])
    def test_matches_instances_sparse_and_dense(self, key_bits, out_bits):
        from repro.hashing.tabulation import (
            _DENSE_KEYS_PER_SEED,
            tabulation_hash_batch,
        )

        rng = np.random.default_rng(3)
        seeds = rng.integers(0, 2**63, 5, dtype=np.uint64)
        # Sparse (few keys per seed) and dense (past the table threshold)
        # regimes must agree with the per-seed instances.
        for count in (12, 5 * _DENSE_KEYS_PER_SEED + 1):
            keys = rng.integers(0, 2**64, count, dtype=np.uint64)
            owner = rng.integers(0, 5, count).astype(np.intp)
            got = tabulation_hash_batch(seeds, owner, keys, key_bits, out_bits)
            for i in range(count):
                fn = TabulationHash(
                    int(seeds[owner[i]]), key_bits=key_bits, out_bits=out_bits
                )
                assert int(got[i]) == fn.hash_one(int(keys[i]))

    def test_rejects_bad_key_bits(self):
        from repro.hashing.tabulation import tabulation_hash_batch

        with pytest.raises(ValueError):
            tabulation_hash_batch(
                np.arange(1, dtype=np.uint64),
                np.zeros(1, dtype=np.intp),
                np.arange(1, dtype=np.uint64),
                key_bits=16,
            )

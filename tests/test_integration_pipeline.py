"""End-to-end integration: checked operations under fault injection.

The contract of the whole system: running a checked operation on correct
hardware accepts; planting any Table 4 / Table 6 manipulator inside the
black box gets detected (with the strong default configuration, a miss is a
< 1e-9 event — treated as impossible here).
"""

import numpy as np
import pytest

from repro.comm.context import Context
from repro.core.params import SumCheckConfig
from repro.dataflow.pipeline import checked_reduce_by_key, checked_sort
from repro.faults.manipulators import (
    PERM_MANIPULATORS,
    SUM_MANIPULATORS,
    get_kv_manipulator,
    get_seq_manipulator,
)
from repro.workloads.kv import aggregate_reference, sum_workload
from repro.workloads.uniform import uniform_integers

STRONG = SumCheckConfig.parse("8x16 m15")


class TestCheckedReduce:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_clean_run_accepts_and_is_correct(self, p):
        keys, values = sum_workload(4_000, num_keys=300, seed=1)
        ref_k, ref_v = aggregate_reference(keys, values)
        ctx = Context(p)

        def run(comm, k, v):
            ok, ov, result, stats = checked_reduce_by_key(
                comm, k, v, STRONG, seed=2
            )
            assert stats.total_seconds > 0
            return ok, ov, result.accepted

        outs = ctx.run(
            run, per_rank_args=list(zip(ctx.split(keys), ctx.split(values)))
        )
        assert all(o[2] for o in outs)
        got_k = np.concatenate([o[0] for o in outs])
        got_v = np.concatenate([o[1] for o in outs])
        order = np.argsort(got_k)
        assert np.array_equal(got_k[order], ref_k)
        assert np.array_equal(got_v[order], ref_v)

    @pytest.mark.parametrize("manipulator", sorted(SUM_MANIPULATORS))
    def test_detects_every_table4_manipulator(self, manipulator):
        keys, values = sum_workload(4_000, num_keys=300, seed=3)
        ctx = Context(4)
        man = (
            get_kv_manipulator(manipulator, key_domain=300)
            if manipulator == "RandKey"
            else get_kv_manipulator(manipulator)
        )

        def run(comm, k, v):
            injected = man if comm.rank == 0 else None
            _, _, result, _ = checked_reduce_by_key(
                comm, k, v, STRONG, seed=4,
                manipulator=injected,
                manipulator_rng=np.random.default_rng(77),
            )
            return result.accepted

        verdicts = ctx.run(
            run, per_rank_args=list(zip(ctx.split(keys), ctx.split(values)))
        )
        assert verdicts == [False] * 4, f"{manipulator} evaded the checker"

    def test_sequential_mode(self):
        keys, values = sum_workload(1_000, num_keys=50, seed=5)
        ok, ov, result, stats = checked_reduce_by_key(
            None, keys, values, STRONG, seed=6
        )
        ref_k, ref_v = aggregate_reference(keys, values)
        assert result.accepted
        assert np.array_equal(ok, ref_k) and np.array_equal(ov, ref_v)


class TestCheckedSort:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_clean_run(self, p):
        data = uniform_integers(4_000, seed=7)
        ctx = Context(p)

        def run(comm, chunk):
            out, result, _ = checked_sort(comm, chunk, seed=8)
            return out, result.accepted

        outs = ctx.run(run, per_rank_args=ctx.split(data))
        assert all(o[1] for o in outs)
        assert np.array_equal(
            np.concatenate([o[0] for o in outs]), np.sort(data)
        )

    @pytest.mark.parametrize("manipulator", sorted(PERM_MANIPULATORS))
    def test_detects_every_table6_manipulator(self, manipulator):
        data = uniform_integers(4_000, seed=9)
        ctx = Context(4)
        man = get_seq_manipulator(manipulator)

        def run(comm, chunk):
            injected = man if comm.rank == 0 else None
            _, result, _ = checked_sort(
                comm, chunk, iterations=2, log_h=64, seed=10,
                manipulator=injected,
                manipulator_rng=np.random.default_rng(33),
            )
            return result.accepted

        verdicts = ctx.run(run, per_rank_args=ctx.split(data))
        assert verdicts == [False] * 4, f"{manipulator} evaded the checker"


class TestWordcount:
    """The motivating workload: counting Zipf words with a checked reduce."""

    def test_checked_wordcount_round_trip(self):
        from collections import Counter

        from repro.workloads.wordcount import synthetic_corpus, word_to_key

        corpus = synthetic_corpus(5_000, vocabulary=400, seed=11)
        truth = Counter(corpus)
        keys = np.array([word_to_key(w) for w in corpus], dtype=np.uint64)
        ones = np.ones(keys.size, dtype=np.int64)
        ctx = Context(4)

        def run(comm, k, v):
            ok, ov, result, _ = checked_reduce_by_key(comm, k, v, STRONG, seed=12)
            return ok, ov, result.accepted

        outs = ctx.run(
            run, per_rank_args=list(zip(ctx.split(keys), ctx.split(ones)))
        )
        assert all(o[2] for o in outs)
        counted = {}
        for ok, ov, _ in outs:
            counted.update(zip(ok.tolist(), ov.tolist()))
        expected = {word_to_key(w): c for w, c in truth.items()}
        assert counted == expected

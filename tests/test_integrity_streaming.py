"""Tests for result integrity (§2), the streaming checker and the CLI runner."""

import numpy as np
import pytest

from repro.comm.context import Context
from repro.core.integrity import check_replicated, replicated_digest
from repro.core.params import SumCheckConfig
from repro.core.sum_checker import SumAggregationChecker, SumCheckerStream
from repro.workloads.kv import aggregate_reference, sum_workload

STRONG = SumCheckConfig.parse("8x16 m15")


class TestReplicatedDigest:
    def test_deterministic(self):
        a = np.arange(10)
        assert replicated_digest(1, a) == replicated_digest(1, a)

    def test_seed_sensitivity(self):
        a = np.arange(10)
        assert replicated_digest(1, a) != replicated_digest(2, a)

    def test_content_sensitivity(self):
        assert replicated_digest(1, np.arange(10)) != replicated_digest(
            1, np.arange(10) + 1
        )

    def test_dtype_sensitivity(self):
        """Same bytes, different dtype, must differ (shape/dtype are data)."""
        a = np.array([1], dtype=np.int64)
        b = a.view(np.uint64)
        assert replicated_digest(1, a) != replicated_digest(1, b)

    def test_multiple_arrays_order_sensitive(self):
        a, b = np.arange(3), np.arange(3, 6)
        assert replicated_digest(1, a, b) != replicated_digest(1, b, a)


class TestCheckReplicated:
    def test_sequential_trivially_true(self):
        assert check_replicated(None, np.arange(5)).accepted

    @pytest.mark.parametrize("p", [2, 4])
    def test_identical_replicas_accepted(self, p):
        ctx = Context(p)
        verdicts = ctx.run(
            lambda comm: check_replicated(comm, np.arange(100), seed=3).accepted
        )
        assert verdicts == [True] * p

    def test_divergent_replica_rejected_everywhere(self):
        ctx = Context(4)

        def run(comm):
            data = np.arange(100)
            if comm.rank == 2:
                data = data.copy()
                data[50] ^= 1  # one bit flipped on one PE
            return check_replicated(comm, data, seed=3).accepted

        assert ctx.run(run) == [False] * 4


class TestSumCheckerStream:
    def test_chunked_equals_oneshot(self, kv_small):
        keys, values = kv_small
        out_k, out_v = aggregate_reference(keys, values)
        checker = SumAggregationChecker(STRONG, seed=4)
        stream = SumCheckerStream(checker)
        # Feed in interleaved, uneven chunks.
        for start in range(0, keys.size, 700):
            stream.feed_input(keys[start : start + 700], values[start : start + 700])
        for start in range(0, out_k.size, 113):
            stream.feed_output(out_k[start : start + 113], out_v[start : start + 113])
        assert stream.settle().accepted

    def test_detects_fault_in_stream(self, kv_small):
        keys, values = kv_small
        out_k, out_v = aggregate_reference(keys, values)
        bad_v = out_v.copy()
        bad_v[3] += 1
        stream = SumCheckerStream(SumAggregationChecker(STRONG, seed=4))
        stream.feed_input(keys, values)
        stream.feed_output(out_k, bad_v)
        assert not stream.settle().accepted

    def test_feed_after_settle_rejected(self, kv_small):
        keys, values = kv_small
        stream = SumCheckerStream(SumAggregationChecker(STRONG, seed=4))
        stream.settle()
        with pytest.raises(RuntimeError):
            stream.feed_input(keys, values)

    def test_resettle_rejected(self, kv_small):
        keys, values = kv_small
        stream = SumCheckerStream(SumAggregationChecker(STRONG, seed=4))
        stream.feed_input(keys, values)
        stream.feed_output(keys, values)
        assert stream.settle().accepted
        # A second settle would re-run the (metered) reduction and
        # double-count traffic — it must raise instead.
        with pytest.raises(RuntimeError):
            stream.settle()

    def test_distributed_resettle_rejected_on_every_pe(self):
        keys, values = sum_workload(1_000, num_keys=60, seed=8)
        ctx = Context(4)

        def run(comm, k, v):
            stream = SumCheckerStream(SumAggregationChecker(STRONG, seed=6))
            stream.feed_input(k, v)
            stream.feed_output(k, v)
            first = stream.settle(comm).accepted
            try:
                stream.settle(comm)
            except RuntimeError:
                return first, True
            return first, False

        results = ctx.run(
            run, per_rank_args=list(zip(ctx.split(keys), ctx.split(values)))
        )
        assert results == [(True, True)] * 4

    @pytest.mark.parametrize("p", [2, 4])
    def test_distributed_settle(self, p):
        keys, values = sum_workload(2_000, num_keys=100, seed=5)
        out_k, out_v = aggregate_reference(keys, values)
        ctx = Context(p)

        def run(comm, k, v, ok, ov):
            stream = SumCheckerStream(SumAggregationChecker(STRONG, seed=6))
            stream.feed_input(k, v)
            stream.feed_output(ok, ov)
            return stream.settle(comm).accepted

        verdicts = ctx.run(
            run,
            per_rank_args=list(
                zip(
                    ctx.split(keys),
                    ctx.split(values),
                    ctx.split(out_k),
                    ctx.split(out_v),
                )
            ),
        )
        assert verdicts == [True] * p


class TestRunnerCLI:
    def test_report_sections(self, tmp_path, capsys):
        from repro.experiments.runner import main

        out = tmp_path / "report.md"
        code = main(
            [
                "--trials",
                "20",
                "--elements",
                "5000",
                "--sections",
                "table2",
                "table3",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        text = out.read_text()
        assert "Table 2" in text and "Table 3" in text
        assert "1e-04" in text or "1e-4" in text

    def test_report_to_stdout(self, capsys):
        from repro.experiments.runner import main

        assert main(["--sections", "table2", "--out", "-"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_fig_sections_small(self, tmp_path):
        from repro.experiments.runner import main

        out = tmp_path / "r.md"
        code = main(
            ["--trials", "10", "--sections", "fig4", "--out", str(out)]
        )
        assert code == 0
        assert "Fig 4" in out.read_text()

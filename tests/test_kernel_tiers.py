"""Kernel-tier contract suite: dispatch, parity, fused streams, compaction.

The tiered kernels (:mod:`repro.kernels`) are only admissible if every
backend is *bit-identical* to the numpy oracle — a faster wrong verdict
would break the paper's one-sided-error guarantee.  This suite pins:

* ``REPRO_KERNEL_TIER`` resolution (valid values, invalid → ``ValueError``,
  explicit-numba-unavailable → one ``RuntimeWarning`` then numpy);
* the numpy kernels against hand-rolled Python references;
* numba/numpy parity per kernel across dtypes and edge shapes (skipped
  when numba is absent — the suite must pass in the numba-free matrix);
* the fused multi-seed stream (chunk-at-a-time table folding) against the
  condensing stream and the batch checker;
* :class:`StreamedKV` adaptive compaction (duplicate-ratio feedback,
  deferred merges, the segment-count backstop);
* the O(chunk) scratch bound of the tiled ``hash_lanes`` fallback under a
  forced kernel-tier environment.
"""

import warnings

import numpy as np
import pytest

from repro.core.multiseed import MultiSeedSumChecker, condense_kv
from repro.core.params import SumCheckConfig
from repro.core.streams import (
    _FUSED_UNIQUE_RATIO,
    _MAX_SEGMENTS,
    _MERGE_FACTOR_MIN,
    _MERGE_FACTOR_START,
    MultiSeedSumCheckerStream,
    StreamedKV,
)
from repro.hashing.families import HashFamily, get_family, hash_lanes
from repro.hashing.mixers import MultiplyShiftHash, SplitMixHash
from repro.kernels import (
    KERNEL_NAMES,
    active_tier,
    get_kernels,
    numba_available,
    resolve_tier,
    seeds_per_block,
)
from repro.kernels import dispatch
from repro.kernels import numpy_backend
from repro.util.rng import derive_seed_array

HAVE_NUMBA = numba_available()

_CONFIG = SumCheckConfig(iterations=4, d=16, rhat=1 << 15)
_SEEDS = np.arange(1, 9, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15)


@pytest.fixture
def clean_env(monkeypatch):
    """Unset the tier env var and forget sticky/warned dispatch state."""
    monkeypatch.delenv(dispatch.ENV_VAR, raising=False)
    dispatch._reset_for_tests()
    yield monkeypatch
    dispatch._reset_for_tests()


# ---------------------------------------------------------------------------
# Tier resolution
# ---------------------------------------------------------------------------


class TestTierResolution:
    def test_unset_env_means_auto(self, clean_env):
        assert resolve_tier() == ("numba" if numba_available() else "numpy")

    @pytest.mark.parametrize("value", ["", "  ", "auto", " AUTO "])
    def test_auto_spellings(self, clean_env, value):
        clean_env.setenv(dispatch.ENV_VAR, value)
        assert resolve_tier() == ("numba" if numba_available() else "numpy")

    @pytest.mark.parametrize("value", ["numpy", "NumPy", " numpy\t"])
    def test_numpy_forced(self, clean_env, value):
        clean_env.setenv(dispatch.ENV_VAR, value)
        assert resolve_tier() == "numpy"
        assert get_kernels().name == "numpy"
        assert get_kernels() is numpy_backend

    @pytest.mark.parametrize("value", ["cuda", "jit", "1", "none"])
    def test_invalid_env_raises(self, clean_env, value):
        clean_env.setenv(dispatch.ENV_VAR, value)
        with pytest.raises(ValueError, match=dispatch.ENV_VAR):
            resolve_tier()
        with pytest.raises(ValueError, match="cuda|jit|1|none"):
            resolve_tier(value)

    def test_explicit_tier_overrides_env(self, clean_env):
        # A call-site override never consults the environment.
        clean_env.setenv(dispatch.ENV_VAR, "bogus")
        assert resolve_tier("numpy") == "numpy"
        assert get_kernels("numpy").name == "numpy"

    def test_active_tier_matches_get_kernels(self, clean_env):
        assert get_kernels().name == active_tier()

    def test_both_backends_expose_the_signature_set(self):
        backends = [numpy_backend]
        if HAVE_NUMBA:
            from repro.kernels import numba_backend

            backends.append(numba_backend)
        for backend in backends:
            for kernel in KERNEL_NAMES:
                assert callable(getattr(backend, kernel)), (
                    backend.name, kernel,
                )


class TestNumbaUnavailableFallback:
    @pytest.mark.skipif(HAVE_NUMBA, reason="numba importable in this env")
    def test_explicit_numba_warns_once_and_falls_back(self, clean_env):
        clean_env.setenv(dispatch.ENV_VAR, "numba")
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert resolve_tier() == "numpy"
        # Once per process: the second resolution is silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_tier() == "numpy"
            assert get_kernels().name == "numpy"

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba importable in this env")
    def test_auto_is_silent_without_numba(self, clean_env):
        clean_env.setenv(dispatch.ENV_VAR, "auto")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_tier() == "numpy"

    def test_sticky_selfcheck_failure_disables_tier(self, clean_env):
        # Simulate a load-time self-check failure: the tier must stay off
        # for the whole process and the fallback warning must say why.
        clean_env.setitem(dispatch._state, "numba", None)
        clean_env.setitem(dispatch._state, "numba_failed", True)
        clean_env.setitem(
            dispatch._state, "numba_error", "RuntimeError: oracle mismatch"
        )
        clean_env.setitem(dispatch._state, "warned_fallback", False)
        assert not numba_available()
        assert resolve_tier("auto") == "numpy"
        with pytest.warns(RuntimeWarning, match="oracle mismatch"):
            assert resolve_tier("numba") == "numpy"
        assert get_kernels("numba").name == "numpy"

    def test_checkers_run_under_forced_numba_env(self, clean_env, rng):
        # End-to-end graceful degradation: a full multi-seed check under
        # REPRO_KERNEL_TIER=numba works on any machine (warning or not).
        clean_env.setenv(dispatch.ENV_VAR, "numba")
        keys = rng.integers(0, 500, 4_000, dtype=np.uint64)
        values = rng.integers(-50, 50, 4_000, dtype=np.int64)
        checker = MultiSeedSumChecker(_CONFIG, _SEEDS)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            res = checker.check_local((keys, values), (keys, values))
        assert res.accepted
        assert res.details["per_seed_accepted"] == [True] * _SEEDS.size


class TestSeedsPerBlock:
    def test_block_sizes(self):
        assert seeds_per_block(250, 100) == 2
        assert seeds_per_block(10, 50) == 1  # never stalls at 0
        assert seeds_per_block(1 << 20, 1) == 1 << 20
        assert seeds_per_block(100, 0) == 100  # empty keys: any block works

    @pytest.mark.parametrize("chunk", [0, -1, -100])
    def test_rejects_non_positive_chunks(self, chunk):
        with pytest.raises(ValueError, match="chunk_elements"):
            seeds_per_block(chunk, 10)


# ---------------------------------------------------------------------------
# Numpy kernels vs hand-rolled references
# ---------------------------------------------------------------------------


def _key_variants(rng):
    wide = rng.integers(0, 2**64, 301, dtype=np.uint64)
    return {
        "full-width": wide,
        "int64-view": wide.view(np.int64).astype(np.uint64),
        "duplicate-heavy": rng.integers(0, 7, 400, dtype=np.uint64)
        * np.uint64(0x0101_0101_0101_0101),
        "empty": np.zeros(0, dtype=np.uint64),
    }


class TestNumpyKernelCorrectness:
    def test_tab_gather_matches_scalar_xor(self, rng):
        num_tables, T, n = 4, 3, 57
        tables = rng.integers(0, 2**64, (num_tables, T, 256), dtype=np.uint64)
        byte_idx = rng.integers(0, 256, (num_tables, n)).astype(np.intp)
        out = np.empty((T, n), dtype=np.uint64)
        tmp = np.empty_like(out)
        numpy_backend.tab_gather(tables, byte_idx, out, tmp)
        for t in range(T):
            for i in range(n):
                acc = 0
                for j in range(num_tables):
                    acc ^= int(tables[j, t, byte_idx[j, i]])
                assert int(out[t, i]) == acc

    def test_scatter_add_mod_matches_python_dict(self, rng):
        r = 101
        d = 16
        buckets = rng.integers(0, d, 5_000).astype(np.intp)
        values = rng.integers(0, r, 5_000, dtype=np.int64)
        table = np.zeros(d, dtype=np.int64)
        numpy_backend.scatter_add_mod(table, buckets, values, r)
        ref = [0] * d
        for b, v in zip(buckets.tolist(), values.tolist()):
            ref[b] = (ref[b] + v) % r
        assert table.tolist() == ref

    def test_scatter_add_mod_huge_modulus_chunks_exactly(self, rng):
        # r near 2^51 forces ~2-element chunks: the deferred-modulo path
        # must stay exact across many chunk boundaries.
        r = (1 << 51) - 129
        buckets = rng.integers(0, 4, 64).astype(np.intp)
        values = rng.integers(0, r, 64, dtype=np.int64)
        table = np.zeros(4, dtype=np.int64)
        numpy_backend.scatter_add_mod(table, buckets, values, r)
        ref = [0, 0, 0, 0]
        for b, v in zip(buckets.tolist(), values.tolist()):
            ref[b] = (ref[b] + v) % r
        assert table.tolist() == ref

    def test_scatter_add_mod_empty_is_noop(self):
        table = np.arange(5, dtype=np.int64)
        numpy_backend.scatter_add_mod(
            table, np.zeros(0, dtype=np.intp), np.zeros(0, dtype=np.int64), 7
        )
        assert table.tolist() == [0, 1, 2, 3, 4]

    def test_mix_lanes_matches_splitmix_instances(self, rng):
        seeds = rng.integers(0, 2**64, 5, dtype=np.uint64)
        keys = rng.integers(0, 2**64, 97, dtype=np.uint64)
        for bits in (64, 32, 15):
            mask = np.uint64((1 << bits) - 1 if bits < 64 else 2**64 - 1)
            out = np.empty((5, 97), dtype=np.uint64)
            numpy_backend.mix_lanes(seeds, keys, mask, out)
            for t, seed in enumerate(seeds):
                expected = SplitMixHash(int(seed), bits).hash_array(keys)
                assert np.array_equal(out[t], expected), bits

    def test_mshift_lanes_matches_multiply_shift_instances(self, rng):
        seeds = rng.integers(0, 2**64, 5, dtype=np.uint64)
        keys = rng.integers(0, 2**64, 97, dtype=np.uint64)
        multipliers = derive_seed_array(seeds, "multiply-shift") | np.uint64(1)
        out = np.empty((5, 97), dtype=np.uint64)
        numpy_backend.mshift_lanes(multipliers, keys, np.uint64(32), out)
        for t, seed in enumerate(seeds):
            expected = MultiplyShiftHash(int(seed), 32).hash_array(keys)
            assert np.array_equal(out[t], expected)

    @pytest.mark.parametrize("op", ["sum", "xor"])
    def test_merges_match_dict_reference(self, rng, op):
        vdtype = np.int64 if op == "sum" else np.uint64
        merge = getattr(numpy_backend, f"merge_sorted_unique_{op}")

        def segment(lo, hi, n):
            keys = np.unique(rng.integers(lo, hi, n, dtype=np.uint64))
            vals = rng.integers(0, 2**32, keys.size, dtype=np.uint64)
            return keys, vals.astype(vdtype) if op == "xor" else vals.view(
                np.int64
            ) - (1 << 31)

        for (alo, ahi), (blo, bhi) in [
            ((0, 100), (50, 150)),  # overlapping
            ((0, 100), (200, 300)),  # disjoint
            ((0, 10), (0, 10)),  # heavily colliding
        ]:
            a = segment(alo, ahi, 80)
            b = segment(blo, bhi, 80)
            uk, out = merge(*a, *b)
            ref: dict = {}
            for seg in (a, b):
                for k, v in zip(seg[0].tolist(), seg[1].tolist()):
                    if op == "xor":
                        ref[k] = ref.get(k, 0) ^ v
                    else:
                        ref[k] = ref.get(k, 0) + v
            assert uk.tolist() == sorted(ref)
            assert out.tolist() == [ref[k] for k in sorted(ref)]
            assert out.dtype == vdtype

    def test_merge_with_empty_segment(self):
        keys = np.array([3, 9], dtype=np.uint64)
        vals = np.array([5, -2], dtype=np.int64)
        empty_k = np.zeros(0, dtype=np.uint64)
        empty_v = np.zeros(0, dtype=np.int64)
        uk, out = numpy_backend.merge_sorted_unique_sum(
            keys, vals, empty_k, empty_v
        )
        assert uk.tolist() == [3, 9] and out.tolist() == [5, -2]


# ---------------------------------------------------------------------------
# Numba parity (skipped when the tier is unavailable)
# ---------------------------------------------------------------------------


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba tier unavailable")
class TestNumbaParity:
    @pytest.fixture
    def nb(self):
        from repro.kernels import numba_backend

        return numba_backend

    @pytest.mark.parametrize("variant", list(_key_variants(
        np.random.default_rng(0)
    )))
    def test_mix_and_mshift_parity(self, nb, rng, variant):
        keys = _key_variants(rng)[variant]
        seeds = rng.integers(0, 2**64, 6, dtype=np.uint64)
        mask = np.uint64((1 << 33) - 1)
        a = np.empty((6, keys.size), dtype=np.uint64)
        b = np.empty_like(a)
        numpy_backend.mix_lanes(seeds, keys, mask, a)
        nb.mix_lanes(seeds, keys, mask, b)
        assert np.array_equal(a, b)
        mult = seeds | np.uint64(1)
        numpy_backend.mshift_lanes(mult, keys, np.uint64(31), a)
        nb.mshift_lanes(mult, keys, np.uint64(31), b)
        assert np.array_equal(a, b)

    def test_tab_gather_parity(self, nb, rng):
        tables = rng.integers(0, 2**64, (8, 4, 256), dtype=np.uint64)
        byte_idx = rng.integers(0, 256, (8, 333)).astype(np.intp)
        a = np.empty((4, 333), dtype=np.uint64)
        tmp = np.empty_like(a)
        b = np.empty_like(a)
        tmp2 = np.empty_like(a)
        numpy_backend.tab_gather(tables, byte_idx, a, tmp)
        nb.tab_gather(tables, byte_idx, b, tmp2)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("n", [0, 1, 4_097])
    def test_scatter_add_mod_parity(self, nb, rng, n):
        r = (1 << 50) + 7
        buckets = rng.integers(0, 16, n).astype(np.intp)
        values = rng.integers(0, r, n, dtype=np.int64)
        a = np.zeros(16, dtype=np.int64)
        b = np.zeros(16, dtype=np.int64)
        numpy_backend.scatter_add_mod(a, buckets, values, r)
        nb.scatter_add_mod(b, buckets, values, r)
        assert np.array_equal(a, b)

    def test_weighted_bincount_parity(self, nb, rng):
        buckets = rng.integers(0, 64, 2_000).astype(np.intp)
        weights = rng.integers(-(2**40), 2**40, 2_000).astype(np.float64)
        a = numpy_backend.weighted_bincount(buckets, weights, 64)
        b = nb.weighted_bincount(buckets, weights, 64)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("op", ["sum", "xor"])
    def test_merge_parity_duplicate_heavy(self, nb, rng, op):
        vdtype = np.int64 if op == "sum" else np.uint64
        ka = np.unique(rng.integers(0, 40, 200, dtype=np.uint64))
        kb = np.unique(rng.integers(20, 60, 200, dtype=np.uint64))
        va = rng.integers(0, 2**31, ka.size).astype(vdtype)
        vb = rng.integers(0, 2**31, kb.size).astype(vdtype)
        for args in [
            (ka, va, kb, vb),
            (ka, va, np.zeros(0, np.uint64), np.zeros(0, vdtype)),
            (np.zeros(0, np.uint64), np.zeros(0, vdtype), kb, vb),
        ]:
            a = getattr(numpy_backend, f"merge_sorted_unique_{op}")(*args)
            b = getattr(nb, f"merge_sorted_unique_{op}")(*args)
            assert np.array_equal(a[0], b[0])
            assert np.array_equal(a[1], b[1])
            assert a[1].dtype == b[1].dtype == vdtype

    def test_end_to_end_tables_identical_across_tiers(self, clean_env, rng):
        keys = rng.integers(0, 900, 6_000, dtype=np.uint64)
        values = rng.integers(-1_000, 1_000, 6_000, dtype=np.int64)
        condensed = condense_kv(keys, values)
        tables = {}
        for tier in ("numpy", "numba"):
            clean_env.setenv(dispatch.ENV_VAR, tier)
            checker = MultiSeedSumChecker(_CONFIG, _SEEDS)
            tables[tier] = checker.local_tables_condensed(condensed)
        assert np.array_equal(tables["numpy"], tables["numba"])


# ---------------------------------------------------------------------------
# Fused multi-seed streaming
# ---------------------------------------------------------------------------


def _chunked(keys, values, chunk):
    for start in range(0, keys.size, chunk):
        yield keys[start : start + chunk], values[start : start + chunk]


@pytest.mark.streaming
class TestFusedStreamParity:
    def _feed(self, stream, keys, values, out_keys, out_values, chunk=700):
        for k, v in _chunked(keys, values, chunk):
            stream.feed_input(k, v)
        for k, v in _chunked(out_keys, out_values, chunk):
            stream.feed_output(k, v)

    @pytest.mark.parametrize("operator", ["+", "xor"])
    @pytest.mark.parametrize("fused", [True, False, "auto"])
    def test_modes_match_batch_verdicts(self, rng, operator, fused):
        keys = rng.integers(0, 2**64, 5_000, dtype=np.uint64)  # mostly unique
        values = rng.integers(-500, 500, 5_000, dtype=np.int64)
        checker = MultiSeedSumChecker(_CONFIG, _SEEDS, operator=operator)
        batch = checker.check_local((keys, values), (keys, values))

        stream = MultiSeedSumCheckerStream(
            MultiSeedSumChecker(_CONFIG, _SEEDS, operator=operator),
            fused=fused,
        )
        self._feed(stream, keys, values, keys, values)
        res = stream.settle()
        assert res.accepted == batch.accepted
        assert (
            res.details["per_seed_accepted"]
            == batch.details["per_seed_accepted"]
        )

    @pytest.mark.parametrize("fused", [True, False, "auto"])
    def test_modes_detect_a_corrupted_output(self, rng, fused):
        keys = rng.integers(0, 2**64, 4_000, dtype=np.uint64)
        values = rng.integers(-500, 500, 4_000, dtype=np.int64)
        bad = values.copy()
        bad[123] += 1
        stream = MultiSeedSumCheckerStream(
            MultiSeedSumChecker(_CONFIG, _SEEDS), fused=fused
        )
        self._feed(stream, keys, values, keys, bad)
        assert not stream.settle().accepted

    @pytest.mark.parametrize("fused", [True, False, "auto"])
    def test_settle_tables_bit_identical_to_batch(self, rng, fused):
        # Stronger than verdict parity: the settled (T, it, d) tensor is
        # the batch tensor of the concatenated feed, bit for bit.
        keys = rng.integers(0, 2**64, 3_000, dtype=np.uint64)
        values = rng.integers(-500, 500, 3_000, dtype=np.int64)
        checker = MultiSeedSumChecker(_CONFIG, _SEEDS)
        expected = checker.local_tables_condensed(condense_kv(keys, values))
        stream = MultiSeedSumCheckerStream(checker, fused=fused)
        for k, v in _chunked(keys, values, 512):
            stream.feed_input(k, v)
        assert np.array_equal(stream._input.settle_tables(), expected)

    def test_auto_fuses_unique_feeds_and_condenses_zipf(self, rng):
        stream = MultiSeedSumCheckerStream(
            MultiSeedSumChecker(_CONFIG, _SEEDS), fused="auto"
        )
        unique_keys = rng.integers(0, 2**64, 2_000, dtype=np.uint64)
        stream.feed_input(unique_keys, np.ones(2_000, dtype=np.int64))
        assert stream._input.mode == "fused"
        dup_keys = rng.integers(0, 50, 2_000, dtype=np.uint64)
        stream.feed_output(dup_keys, np.ones(2_000, dtype=np.int64))
        assert stream._output.mode == "condense"
        # The decision threshold itself stays pinned.
        assert _FUSED_UNIQUE_RATIO == 0.9

    def test_fused_mode_refuses_condensed_access(self, rng):
        stream = MultiSeedSumCheckerStream(
            MultiSeedSumChecker(_CONFIG, _SEEDS), fused=True
        )
        keys = rng.integers(0, 2**64, 100, dtype=np.uint64)
        stream.feed_input(keys, np.ones(100, dtype=np.int64))
        with pytest.raises(RuntimeError, match="fused"):
            stream.condensed_input()
        # The condensing construction keeps the aggregates available.
        legacy = MultiSeedSumCheckerStream(
            MultiSeedSumChecker(_CONFIG, _SEEDS), fused=False
        )
        legacy.feed_input(keys, np.ones(100, dtype=np.int64))
        assert legacy.condensed_input().unique_keys.size == 100

    @pytest.mark.parametrize("bad", ["bogus", "fused", None, 2])
    def test_invalid_fused_value_raises(self, bad):
        with pytest.raises(ValueError, match="fused"):
            MultiSeedSumCheckerStream(
                MultiSeedSumChecker(_CONFIG, _SEEDS), fused=bad
            )


# ---------------------------------------------------------------------------
# StreamedKV adaptive compaction
# ---------------------------------------------------------------------------


@pytest.mark.streaming
class TestAdaptiveCompaction:
    def _reference(self, chunks):
        ref: dict = {}
        for keys, values in chunks:
            for k, v in zip(keys.tolist(), values.tolist()):
                ref[k] = ref.get(k, 0) + v
        return ref

    def test_all_unique_feed_lowers_factor_and_defers_merges(self):
        kv = StreamedKV()
        chunks = []
        for i in range(12):
            keys = np.arange(i * 100, (i + 1) * 100, dtype=np.uint64)
            values = np.full(100, i + 1, dtype=np.int64)
            chunks.append((keys, values))
            kv.fold(keys, values)
        # Merges never shrink a disjoint feed, so the factor backs off…
        assert kv._merge_factor < _MERGE_FACTOR_START
        # …and segments are left unmerged instead of re-copied each fold.
        assert len(kv._segments) > 1
        uk, aggs = kv.merged()
        ref = self._reference(chunks)
        assert uk.tolist() == sorted(ref)
        assert aggs.tolist() == [ref[k] for k in sorted(ref)]

    def test_duplicate_heavy_feed_keeps_merging_eagerly(self, rng):
        kv = StreamedKV()
        for _ in range(12):
            keys = rng.integers(0, 64, 500, dtype=np.uint64)
            kv.fold(keys, np.ones(500, dtype=np.int64))
        # Halving merges keep the factor at (or above) its start value and
        # the retained state collapses to the true unique count.
        assert kv._merge_factor >= _MERGE_FACTOR_START
        assert len(kv._segments) == 1
        assert kv.unique_count <= 64
        assert kv.compactions >= 10

    def test_segment_count_backstop_forces_concat_all(self):
        kv = StreamedKV()
        max_seen = 0
        collapsed_after_deferral = False
        for i in range(3 * _MAX_SEGMENTS):
            keys = np.arange(i * 8, i * 8 + 8, dtype=np.uint64)
            kv.fold(keys, np.ones(8, dtype=np.int64))
            n = len(kv._segments)
            assert n <= _MAX_SEGMENTS  # the backstop bounds segment count
            if max_seen >= _MAX_SEGMENTS - 1 and n == 1:
                collapsed_after_deferral = True
            max_seen = max(max_seen, n)
        assert max_seen >= _MAX_SEGMENTS - 1  # merges really were deferred
        assert collapsed_after_deferral  # …then one concat-all fired
        assert kv._merge_factor >= _MERGE_FACTOR_MIN
        uk, aggs = kv.merged()
        assert uk.size == 3 * _MAX_SEGMENTS * 8
        assert bool(np.all(aggs == 1))

    def test_compactions_counter_counts_merges(self):
        kv = StreamedKV()
        assert kv.compactions == 0
        keys = np.arange(10, dtype=np.uint64)
        kv.fold(keys, np.ones(10, dtype=np.int64))
        assert kv.compactions == 0  # one segment: nothing to merge
        kv.fold(keys, np.ones(10, dtype=np.int64))
        assert kv.compactions == 1  # equal-size segments merge immediately

    @pytest.mark.parametrize("operator", ["+", "xor"])
    def test_direct_condensed_matches_batch_condensation(self, rng, operator):
        kv = StreamedKV(operator)
        for _ in range(5):
            keys = rng.integers(0, 300, 1_000, dtype=np.uint64)
            values = rng.integers(-(2**40), 2**40, 1_000, dtype=np.int64)
            kv.fold(keys, values)
        direct = kv.condensed()
        ref = condense_kv(*kv.pairs(), kv.operator)
        assert np.array_equal(direct.unique_keys, ref.unique_keys)
        assert np.array_equal(direct.inverse, ref.inverse)
        assert np.array_equal(direct.values, ref.values)
        for field in ("agg", "agg_float", "agg_xor"):
            a, b = getattr(direct, field), getattr(ref, field)
            assert (a is None) == (b is None), field
            if a is not None:
                assert np.array_equal(a, b), field

    def test_python_int_promotion_survives_adaptive_merges(self):
        kv = StreamedKV()
        big = (1 << 62) - 1
        for _ in range(4):  # Σ|v| crosses 2^63 → object-dtype promotion
            kv.fold(
                np.array([7, 7, 9], dtype=np.uint64),
                np.array([big, big, 1], dtype=np.int64),
            )
        uk, aggs = kv.merged()
        assert aggs.dtype == object
        assert uk.tolist() == [7, 9]
        assert aggs.tolist() == [8 * big, 4]
        # The exploded int64 pairs still reproduce the exact sums.
        pk, pv = kv.pairs()
        totals: dict = {}
        for k, v in zip(pk.tolist(), pv.tolist()):
            totals[k] = totals.get(k, 0) + v
        assert totals == {7: 8 * big, 9: 4}


# ---------------------------------------------------------------------------
# Tiled-fallback scratch bound under a forced tier environment
# ---------------------------------------------------------------------------


class TestFallbackScratchUnderTierEnv:
    @pytest.mark.parametrize("tier", ["numpy", "numba"])
    def test_hash_lanes_fallback_stays_chunk_bounded(
        self, clean_env, rng, tier
    ):
        # The kernel-less fallback must obey seeds_per_block whatever
        # REPRO_KERNEL_TIER says — the env var selects kernels, it never
        # re-opens the O(T·n) tiling regression.
        clean_env.setenv(dispatch.ENV_VAR, tier)
        sizes = []
        src = get_family("Mix")

        def spy_kernel(seeds, owner, keys):
            sizes.append(keys.size)
            return src._batch_kernel(seeds, owner, keys)

        fam = HashFamily(
            "MixSpyTier", src._factory, 64, "kernel-less spy",
            batch_kernel=spy_kernel,
        )
        keys = rng.integers(0, 2**64, 100, dtype=np.uint64)
        seeds = rng.integers(0, 2**64, 37, dtype=np.uint64)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            lanes = hash_lanes(fam, seeds, keys, chunk_elements=250)
        assert max(sizes) <= 250  # peak tiled scratch is O(chunk)
        assert len(sizes) == -(-37 // seeds_per_block(250, 100))
        for t, seed in enumerate(seeds):
            assert np.array_equal(
                lanes[t], src.instance(int(seed)).hash_array(keys)
            )

"""mpi4py backend tests (``pytest -m mpi``).

These run in a *single* process (MPI world size 1): operator mapping,
world-size validation, the p = 1 inline path, and payload-eligibility
rules for the native fast paths.  The real 4-rank exercise lives in
``examples/mpi_backend_smoke.py`` under ``mpiexec -n 4`` (see the CI
``test-mpi`` job); without mpi4py installed this module skips entirely.
"""

import numpy as np
import pytest

from repro.comm import Context, ops
from repro.comm.mpi_backend import (
    _EXACT_KINDS,
    _exact_array,
    _mpi_op,
    mpi_available,
)

pytestmark = [
    pytest.mark.mpi,
    pytest.mark.skipif(not mpi_available(), reason="mpi4py not installed"),
]


class TestOperatorMapping:
    def test_all_named_ops_map(self):
        from mpi4py import MPI

        expected = {
            "sum": MPI.SUM,
            "max": MPI.MAX,
            "min": MPI.MIN,
            "bor": MPI.BOR,
            "band": MPI.BAND,
            "bxor": MPI.BXOR,
            "lor": MPI.LOR,
            "land": MPI.LAND,
        }
        for name, mpi_op in expected.items():
            assert _mpi_op(MPI, getattr(ops, name.upper())) is mpi_op

    def test_anonymous_callable_has_no_native_path(self):
        from mpi4py import MPI

        assert _mpi_op(MPI, lambda a, b: a + b) is None


class TestFastPathEligibility:
    @pytest.mark.parametrize("dtype", [np.int64, np.uint8, np.uint64, bool])
    def test_integer_arrays_are_exact(self, dtype):
        assert _exact_array(np.zeros(4, dtype=dtype))
        assert np.dtype(dtype).kind in _EXACT_KINDS

    def test_float_and_object_payloads_fall_back(self):
        assert not _exact_array(np.zeros(4, dtype=np.float64))
        assert not _exact_array(np.zeros(4, dtype=object))
        assert not _exact_array([1, 2, 3])
        assert not _exact_array(np.arange(8)[::2])  # non-contiguous


class TestWorldSizeDiscipline:
    def test_mismatched_world_size_is_rejected(self):
        from mpi4py import MPI

        want = MPI.COMM_WORLD.Get_size() + 1
        ctx = Context(want, backend="mpi")
        with pytest.raises(RuntimeError, match="world size"):
            ctx.run(lambda comm: comm.rank)

    def test_single_pe_runs_inline(self):
        ctx = Context(1, backend="mpi")
        assert ctx.run(lambda comm: comm.allreduce(3, op=ops.SUM)) == [3]

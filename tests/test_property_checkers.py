"""Property-based tests (hypothesis) on the checkers' core invariants.

The defining property of every checker is **one-sided error**: a correct
result is accepted with probability 1, for *any* input and any checker
randomness.  Hypothesis hunts for counterexamples across the input space.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.median_checker import check_median_aggregation
from repro.core.params import SumCheckConfig, optimize_parameters
from repro.core.permutation_checker import (
    check_permutation_gf64,
    check_permutation_hashsum,
    check_permutation_polynomial,
    wide_sum,
)
from repro.core.sort_checker import check_sort
from repro.core.sum_checker import SumAggregationChecker, check_sum_aggregation
from repro.core.zip_checker import check_zip
from repro.hashing.gf2 import gf64_mul
from repro.workloads.kv import aggregate_reference

_pairs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50),  # keys (collisions likely)
        st.integers(min_value=-(2**31), max_value=2**31),  # values
    ),
    min_size=0,
    max_size=60,
)

_configs = st.sampled_from(
    [
        SumCheckConfig.parse("1x2 m3"),
        SumCheckConfig.parse("2x4 m5"),
        SumCheckConfig.parse("4x8 m15"),
        SumCheckConfig.parse("3x37 m7"),
        SumCheckConfig.parse("8x16 m15"),
    ]
)

_seeds = st.integers(min_value=0, max_value=2**32)


def _to_arrays(pairs):
    if not pairs:
        return (
            np.zeros(0, dtype=np.uint64),
            np.zeros(0, dtype=np.int64),
        )
    ks, vs = zip(*pairs)
    return np.array(ks, dtype=np.uint64), np.array(vs, dtype=np.int64)


class TestSumCheckerOneSided:
    @given(pairs=_pairs, config=_configs, seed=_seeds)
    @settings(max_examples=150, deadline=None)
    def test_correct_aggregation_always_accepted(self, pairs, config, seed):
        keys, values = _to_arrays(pairs)
        out_k, out_v = aggregate_reference(keys, values)
        result = check_sum_aggregation(
            (keys, values), (out_k, out_v), config, seed=seed
        )
        assert result.accepted

    @given(pairs=_pairs, config=_configs, seed=_seeds, shuffle_seed=_seeds)
    @settings(max_examples=80, deadline=None)
    def test_output_order_irrelevant(self, pairs, config, seed, shuffle_seed):
        keys, values = _to_arrays(pairs)
        out_k, out_v = aggregate_reference(keys, values)
        perm = np.random.default_rng(shuffle_seed).permutation(out_k.size)
        result = check_sum_aggregation(
            (keys, values), (out_k[perm], out_v[perm]), config, seed=seed
        )
        assert result.accepted

    @given(pairs=_pairs, config=_configs, seed=_seeds)
    @settings(max_examples=80, deadline=None)
    def test_table_linearity(self, pairs, config, seed):
        """T(A ⊎ B) = T(A) ⊕ T(B) — the identity behind detects_delta."""
        keys, values = _to_arrays(pairs)
        half = keys.size // 2
        checker = SumAggregationChecker(config, seed)
        whole = checker.local_tables(keys, values)
        parts = checker.combine(
            checker.local_tables(keys[:half], values[:half]),
            checker.local_tables(keys[half:], values[half:]),
        )
        assert np.array_equal(whole, parts)

    @given(pairs=_pairs, config=_configs, seed=_seeds)
    @settings(max_examples=60, deadline=None)
    def test_pack_unpack_identity(self, pairs, config, seed):
        keys, values = _to_arrays(pairs)
        checker = SumAggregationChecker(config, seed)
        table = checker.local_tables(keys, values)
        assert np.array_equal(checker.unpack(checker.pack(table)), table)


_elements = st.lists(
    st.integers(min_value=0, max_value=2**32 - 1), min_size=0, max_size=50
)


class TestPermutationOneSided:
    @given(xs=_elements, seed=_seeds, shuffle_seed=_seeds)
    @settings(max_examples=100, deadline=None)
    def test_hashsum_accepts_all_permutations(self, xs, seed, shuffle_seed):
        e = np.array(xs, dtype=np.uint64)
        o = np.random.default_rng(shuffle_seed).permutation(e)
        assert check_permutation_hashsum(e, o, seed=seed).accepted

    @given(xs=_elements, seed=_seeds, shuffle_seed=_seeds)
    @settings(max_examples=60, deadline=None)
    def test_polynomial_accepts_all_permutations(self, xs, seed, shuffle_seed):
        e = np.array(xs, dtype=np.uint64)
        o = np.random.default_rng(shuffle_seed).permutation(e)
        assert check_permutation_polynomial(
            e, o, universe=2**32, seed=seed
        ).accepted

    @given(xs=_elements, seed=_seeds, shuffle_seed=_seeds)
    @settings(max_examples=60, deadline=None)
    def test_gf64_accepts_all_permutations(self, xs, seed, shuffle_seed):
        e = np.array(xs, dtype=np.uint64)
        o = np.random.default_rng(shuffle_seed).permutation(e)
        assert check_permutation_gf64(e, o, seed=seed).accepted

    @given(
        xs=st.lists(
            st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=50
        ),
        seed=_seeds,
        extra=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_hashsum_detects_multiset_growth(self, xs, seed, extra):
        """Appending any element must be detected (wide sum, strong hash)."""
        e = np.array(xs, dtype=np.uint64)
        o = np.append(e, np.uint64(extra))
        result = check_permutation_hashsum(
            e, o, iterations=2, log_h=64, seed=seed
        )
        assert not result.accepted

    @given(xs=_elements, seed=_seeds)
    @settings(max_examples=100, deadline=None)
    def test_sort_checker_accepts_true_sort(self, xs, seed):
        e = np.array(xs, dtype=np.uint64)
        assert check_sort(e, np.sort(e), seed=seed).accepted


class TestWideSumProperty:
    @given(
        xs=st.lists(
            st.integers(min_value=0, max_value=2**64 - 1),
            min_size=0,
            max_size=200,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_arbitrary_precision(self, xs):
        arr = np.array(xs, dtype=np.uint64)
        assert wide_sum(arr) == sum(xs)


class TestGF64Properties:
    @given(
        a=st.integers(min_value=0, max_value=2**64 - 1),
        b=st.integers(min_value=0, max_value=2**64 - 1),
        c=st.integers(min_value=0, max_value=2**64 - 1),
    )
    @settings(max_examples=150, deadline=None)
    def test_ring_axioms(self, a, b, c):
        assert gf64_mul(a, b) == gf64_mul(b, a)
        assert gf64_mul(gf64_mul(a, b), c) == gf64_mul(a, gf64_mul(b, c))
        assert gf64_mul(a, b ^ c) == gf64_mul(a, b) ^ gf64_mul(a, c)


class TestMedianProperty:
    @given(
        values=st.lists(
            st.integers(min_value=-1000, max_value=1000),
            min_size=1,
            max_size=41,
            unique=True,
        ),
        seed=_seeds,
    )
    @settings(max_examples=100, deadline=None)
    def test_true_median_always_accepted(self, values, seed):
        vals = np.array(values, dtype=np.int64)
        keys = np.full(vals.size, 9, dtype=np.uint64)
        med = float(np.median(vals))
        num = int(round(med * 2))
        num, den = (num // 2, 1) if num % 2 == 0 else (num, 2)
        result = check_median_aggregation(
            keys, vals, [9], [num], [den],
            config=SumCheckConfig.parse("4x8 m15"), seed=seed,
        )
        assert result.accepted


class TestZipProperty:
    @given(
        xs=st.lists(
            st.integers(min_value=0, max_value=2**32), min_size=0, max_size=50
        ),
        seed=_seeds,
    )
    @settings(max_examples=80, deadline=None)
    def test_identity_zip_accepted(self, xs, seed):
        a = np.array(xs, dtype=np.uint64)
        b = (a * np.uint64(3)) ^ np.uint64(0x55)
        assert check_zip(a, b, a, b, seed=seed).accepted


class TestOptimizerProperty:
    @given(
        b=st.sampled_from([256, 512, 1024, 4096, 16384]),
        exp=st.integers(min_value=2, max_value=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_result_always_feasible(self, b, exp):
        delta = 10.0**-exp
        try:
            cfg = optimize_parameters(b, delta)
        except ValueError:
            # Tiny budgets genuinely cannot reach extreme δ (e.g. 256 bits
            # bottom out around 1.5e-7); raising is the correct outcome.
            assert b <= 512 and exp >= 7
            return
        assert cfg.table_bits <= b
        assert cfg.failure_bound <= delta

"""Property-based tests (hypothesis) on the dataflow layer.

The dataflow operations are the trusted oracle the checkers are tested
against, so they deserve their own adversarial inputs: arbitrary values,
arbitrary (unbalanced, empty-slice) distributions.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.context import Context
from repro.dataflow.ops.reduce_by_key import local_aggregate, reduce_by_key
from repro.dataflow.ops.sort import sample_sort
from repro.dataflow.ops.zip_op import zip_arrays
from repro.workloads.kv import aggregate_reference

_small_pairs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=-1000, max_value=1000),
    ),
    min_size=0,
    max_size=40,
)

_values = st.lists(
    st.integers(min_value=0, max_value=2**32), min_size=0, max_size=60
)

# A distribution of n items over 3 PEs: two cut points.
_cuts = st.tuples(
    st.floats(min_value=0, max_value=1), st.floats(min_value=0, max_value=1)
)


def _split3(arr: np.ndarray, cuts) -> list[np.ndarray]:
    a, b = sorted(int(round(c * arr.size)) for c in cuts)
    return [arr[:a], arr[a:b], arr[b:]]


class TestLocalAggregateProperties:
    @given(pairs=_small_pairs)
    @settings(max_examples=100, deadline=None)
    def test_matches_dict_semantics(self, pairs):
        ref: dict[int, int] = {}
        for k, v in pairs:
            ref[k] = ref.get(k, 0) + v
        keys = np.array([k for k, _ in pairs], dtype=np.uint64)
        values = np.array([v for _, v in pairs], dtype=np.int64)
        out_k, out_v = local_aggregate(keys, values)
        assert dict(zip(out_k.tolist(), out_v.tolist())) == ref

    @given(pairs=_small_pairs, cuts=_cuts)
    @settings(max_examples=60, deadline=None)
    def test_distributed_reduce_invariant_to_distribution(self, pairs, cuts):
        keys = np.array([k for k, _ in pairs], dtype=np.uint64)
        values = np.array([v for _, v in pairs], dtype=np.int64)
        ref_k, ref_v = aggregate_reference(keys, values)
        ctx = Context(3)
        outs = ctx.run(
            lambda comm, k, v: reduce_by_key(comm, k, v),
            per_rank_args=list(zip(_split3(keys, cuts), _split3(values, cuts))),
        )
        got_k = np.concatenate([o[0] for o in outs])
        got_v = np.concatenate([o[1] for o in outs])
        order = np.argsort(got_k)
        assert np.array_equal(got_k[order], ref_k)
        assert np.array_equal(got_v[order], ref_v)


class TestSampleSortProperties:
    @given(xs=_values, cuts=_cuts)
    @settings(max_examples=60, deadline=None)
    def test_equals_numpy_sort_for_any_distribution(self, xs, cuts):
        data = np.array(xs, dtype=np.uint64)
        ctx = Context(3)
        outs = ctx.run(
            lambda comm, c: sample_sort(comm, c),
            per_rank_args=_split3(data, cuts),
        )
        assert np.array_equal(np.concatenate(outs), np.sort(data))


class TestZipProperties:
    @given(xs=_values, cuts_a=_cuts, cuts_b=_cuts)
    @settings(max_examples=60, deadline=None)
    def test_realignment_for_any_pair_of_distributions(self, xs, cuts_a, cuts_b):
        a = np.array(xs, dtype=np.uint64)
        b = (a * np.uint64(7)) ^ np.uint64(0x1234)
        ctx = Context(3)
        outs = ctx.run(
            lambda comm, ca, cb: zip_arrays(comm, ca, cb),
            per_rank_args=list(zip(_split3(a, cuts_a), _split3(b, cuts_b))),
        )
        firsts = np.concatenate([o[0] for o in outs])
        seconds = np.concatenate([o[1] for o in outs])
        assert np.array_equal(firsts, a)
        assert np.array_equal(seconds, b)

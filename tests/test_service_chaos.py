"""Chaos soak harness tests: determinism, detection accounting, gates.

The soak's evaluation must line up with the paper's analytic model:
every injected corruption is either detected (repair/quarantine trail),
a benign no-op (output still equals clean ground truth), or an
undetected miss bounded by :func:`detection_allowance`; healed windows
must be bit-identical to a clean run.
"""

import numpy as np
import pytest

from repro.experiments.accuracy import detection_allowance
from repro.service import Op, OpChecker, SoakConfig, build_tenants, run_soak

SMALL = SoakConfig(
    tenants=4,
    windows_per_tenant=3,
    chunks_per_window=2,
    chunk_size=64,
    key_domain=32,
    fault_rate=1.0,
    persistent_share=0.4,
    seed=3,
)


def logical_payload(report):
    """The soak outcome minus wall-clock noise (for determinism checks)."""
    drop = {"rsp_avg", "rsp_max"}
    return [
        {k: v for k, v in t.to_payload().items() if k not in drop}
        for t in report.tenants
    ]


class TestDetectionAllowance:
    def test_zero_cases(self):
        assert detection_allowance(0, 0.5) == 0
        assert detection_allowance(10, 0.0) == 0

    def test_tiny_delta_allows_nothing(self):
        # When even one miss would be a < tail event, nothing is allowed.
        assert detection_allowance(100, 1e-9) == 0
        # At 1e-5 a single miss among 100 injections is still plausible.
        assert detection_allowance(100, 1e-5) == 1

    def test_large_delta_allows_misses(self):
        # Binomial(100, 0.5): the 1e-6 upper tail sits ~4.7 sigma out.
        allowance = detection_allowance(100, 0.5)
        assert 65 <= allowance <= 80

    def test_monotone_in_delta(self):
        assert detection_allowance(50, 0.01) <= detection_allowance(50, 0.3)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            detection_allowance(-1, 0.1)
        with pytest.raises(ValueError):
            detection_allowance(5, 1.0)


class TestOpChecker:
    def test_accounting(self):
        checker = OpChecker(Op.SUM)
        assert checker.succ_rate() == 1.0
        checker.check_result(True, 0.1)
        checker.check_result(True, 0.3)
        checker.check_result(False, 0.2)
        assert checker.total() == 3
        assert checker.succ_rate() == pytest.approx(2 / 3)
        assert checker.avg_rsp() == pytest.approx(0.2)
        assert checker.max_rsp() == pytest.approx(0.3)


class TestSoak:
    @pytest.fixture(scope="class")
    def report(self):
        return run_soak(SMALL)

    def test_every_op_exercised(self, report):
        assert {t.op for t in report.tenants} == set(SMALL.ops)
        assert report.windows == SMALL.tenants * SMALL.windows_per_tenant

    def test_no_tenant_crashes(self, report):
        assert all(t.error is None for t in report.tenants)

    def test_all_faults_accounted(self, report):
        assert report.injected == report.windows  # fault_rate 1.0
        for t in report.tenants:
            # Every injection is detected, provably benign, or within
            # the analytic miss allowance.
            assert t.detected + t.benign_no_ops + t.undetected == t.injected
            assert t.undetected <= t.allowance
        # This seed's run is fully deterministic: zero actual misses.
        assert report.undetected == 0
        assert report.within_allowance

    def test_transients_heal_persistents_quarantine(self, report):
        assert report.repaired > 0
        assert report.quarantined > 0
        for t in report.tenants:
            assert t.repaired + t.quarantined == t.detected
            if t.quarantined:
                assert t.degraded

    def test_repairs_bit_identical(self, report):
        assert report.repairs_bit_identical
        for t in report.tenants:
            assert not t.mismatched_windows

    def test_logical_determinism(self, report):
        assert logical_payload(report) == logical_payload(run_soak(SMALL))

    def test_table_and_payload(self, report):
        table = report.table()
        for t in report.tenants:
            assert t.name in table
        payload = report.to_payload()
        assert payload["windows"] == report.windows
        assert payload["repairs_bit_identical"] is True
        assert set(payload["service"]) == {t.name for t in report.tenants}


class TestChaosTenantConstruction:
    def test_extra_chaos_tenants_leave_base_plans_alone(self):
        base = build_tenants(SMALL)
        cfg = SoakConfig(**{**SMALL.__dict__, "extra_chaos_tenants": 3})
        extended = build_tenants(cfg)
        assert len(extended) == len(base) + 3
        for a, b in zip(base, extended):
            assert a.name == b.name and a.seed == b.seed
            assert a.plans == b.plans
            for w in range(SMALL.windows_per_tenant):
                for ca, cb in zip(a.window_chunks(w), b.window_chunks(w)):
                    if isinstance(ca, tuple):
                        assert all(
                            np.array_equal(x, y) for x, y in zip(ca, cb)
                        )
                    else:
                        assert np.array_equal(ca, cb)
        for extra in extended[len(base):]:
            assert extra.name.startswith("chaos-")
            # Always-faulting and fully persistent.
            assert len(extra.plans) == SMALL.windows_per_tenant
            assert all(p.persistent for p in extra.plans.values())

    def test_faulty_ops_use_matching_rosters(self):
        from repro.service import KV_FAULTS, SEQ_FAULTS, ZIP_FAULTS

        for tc in build_tenants(SMALL):
            roster = {
                Op.REDUCE_BY_KEY: KV_FAULTS,
                Op.COUNT_BY_KEY: KV_FAULTS,
                Op.SUM: SEQ_FAULTS,
                Op.ZIP: ZIP_FAULTS,
            }[tc.op]
            for plan in tc.plans.values():
                assert plan.manipulator in roster

"""Robustness tests for the multi-tenant checked streaming daemon.

Covers the degradation edges the service exists for: poison-chunk
isolation, queue-full shedding and pause backpressure, settlement
timeout → retry → quarantine, fatal-error containment, concurrency-safe
stats accumulation, and cross-tenant isolation under simulated comm
(a quarantined tenant never stalls a healthy tenant's windows).
"""

import threading
import time

import numpy as np
import pytest

from repro.core.params import SumCheckConfig
from repro.dataflow.pipeline import CheckedRunStats, StatsAccumulator
from repro.dataflow.repair import RepairPolicy
from repro.dataflow.streaming import window_seed
from repro.service import (
    BACKPRESSURE_SHED,
    BackpressureTimeout,
    CheckedStreamService,
    TenantCommGrid,
    TenantConfig,
)

CONFIG = SumCheckConfig.parse("8x16 m15")


def sum_chunk(seed, n=64):
    return np.random.default_rng(seed).integers(0, 1 << 20, n).astype(np.int64)


class TestLifecycle:
    def test_unknown_op_rejected(self):
        svc = CheckedStreamService()
        with pytest.raises(ValueError, match="unknown op"):
            svc.register("t", TenantConfig(op="sort"))

    def test_duplicate_name_rejected(self):
        with CheckedStreamService() as svc:
            svc.register("t", TenantConfig(op="sum"))
            with pytest.raises(ValueError, match="already registered"):
                svc.register("t", TenantConfig(op="sum"))

    def test_submit_after_close_rejected(self):
        with CheckedStreamService() as svc:
            h = svc.register("t", TenantConfig(op="sum"))
            h.close()
            with pytest.raises(RuntimeError, match="closed"):
                h.submit(sum_chunk(0))

    def test_multi_tenant_outputs_match_ground_truth(self):
        with CheckedStreamService() as svc:
            handles = {}
            chunks = {}
            for t in range(4):
                name = f"t{t}"
                handles[name] = svc.register(
                    name,
                    TenantConfig(op="sum", config=CONFIG, seed=t,
                                 chunks_per_window=2),
                )
                chunks[name] = [sum_chunk(10 * t + c) for c in range(4)]
            for c in range(4):  # interleave across tenants
                for name, h in handles.items():
                    h.submit(chunks[name][c])
            for h in handles.values():
                h.close()
            assert svc.drain(timeout=60)
            for name, h in handles.items():
                res = h.result()
                assert res.accepted and res.error is None
                expected = [
                    int(np.sum(chunks[name][0]) + np.sum(chunks[name][1])),
                    int(np.sum(chunks[name][2]) + np.sum(chunks[name][3])),
                ]
                assert [int(o) for o in res.outputs] == expected
                view = res.stats
                assert view.windows_settled == 2
                assert view.success_rate == 1.0
                assert not view.degraded
            assert svc.run_stats().windows == 8


class TestPoisonIsolation:
    def test_poison_degrades_only_its_tenant(self):
        with CheckedStreamService() as svc:
            sick = svc.register(
                "sick", TenantConfig(op="sum", chunks_per_window=2)
            )
            healthy = svc.register(
                "healthy", TenantConfig(op="sum", chunks_per_window=2)
            )
            good = [sum_chunk(c) for c in range(4)]
            sick.submit(good[0])
            sick.submit("definitely not an array")  # poison
            sick.submit(np.array([[1, 2], [3, 4]]))  # wrong rank: poison
            sick.submit(good[1])
            for c in good:
                healthy.submit(c)
            sick.close()
            healthy.close()
            assert svc.drain(timeout=60)

            sick_res = sick.result()
            assert sick_res.error is None  # captured, not crashed
            assert len(sick_res.poisons) == 2
            assert sick_res.stats.poison_chunks == 2
            assert sick_res.stats.degraded
            # The valid chunks still settled (and accepted).
            assert [int(o) for o in sick_res.outputs] == [
                int(np.sum(good[0]) + np.sum(good[1]))
            ]
            assert sick_res.stats.windows_settled == 1
            assert all(v.accepted for v in sick_res.verdicts)

            healthy_res = healthy.result()
            assert healthy_res.accepted
            assert not healthy_res.stats.degraded
            assert healthy_res.stats.poison_chunks == 0

    def test_kv_poison_shapes(self):
        with CheckedStreamService() as svc:
            h = svc.register(
                "t", TenantConfig(op="reduce_by_key", chunks_per_window=1)
            )
            k = np.arange(8, dtype=np.uint64)
            h.submit((k, np.ones(7, dtype=np.int64)))  # length mismatch
            h.submit((k,))  # not a pair
            h.submit(
                (np.arange(8, dtype=np.int64) - 4, np.ones(8, dtype=np.int64))
            )  # negative keys
            h.submit((k, np.ones(8, dtype=np.int64)))  # fine
            h.close()
            assert svc.drain(timeout=60)
            res = h.result()
            assert len(res.poisons) == 3
            assert res.stats.windows_settled == 1
            assert all(v.accepted for v in res.verdicts)


class _Gate:
    """Fault hook that blocks the first settle until released."""

    def __init__(self):
        self.entered = threading.Event()
        self.release = threading.Event()
        self._first = True

    def __call__(self, window, values):
        if self._first:
            self._first = False
            self.entered.set()
            assert self.release.wait(timeout=30)
        return values


class TestBackpressure:
    def test_shed_records_dropped_chunks(self):
        gate = _Gate()
        with CheckedStreamService() as svc:
            h = svc.register(
                "t",
                TenantConfig(
                    op="sum",
                    chunks_per_window=1,
                    queue_capacity=2,
                    backpressure=BACKPRESSURE_SHED,
                    fault=gate,
                ),
            )
            assert h.submit(sum_chunk(0))  # worker takes it, blocks in settle
            assert gate.entered.wait(timeout=30)
            assert h.submit(sum_chunk(1))  # queue slot 1
            assert h.submit(sum_chunk(2))  # queue slot 2
            assert not h.submit(sum_chunk(3))  # full: shed
            assert not h.submit(sum_chunk(4))  # full: shed
            gate.release.set()
            h.close()
            assert svc.drain(timeout=60)
            view = h.stats()
            assert view.chunks_submitted == 5
            assert view.chunks_shed == 2
            assert view.elements_shed == 2 * 64
            assert view.chunks_ingested == 3
            assert view.windows_settled == 3
            assert h.result().accepted

    def test_pause_blocks_then_times_out(self):
        gate = _Gate()
        with CheckedStreamService() as svc:
            h = svc.register(
                "t",
                TenantConfig(
                    op="sum",
                    chunks_per_window=1,
                    queue_capacity=1,
                    fault=gate,
                ),
            )
            h.submit(sum_chunk(0))
            assert gate.entered.wait(timeout=30)
            h.submit(sum_chunk(1))  # fills the single slot
            with pytest.raises(BackpressureTimeout):
                h.submit(sum_chunk(2), timeout=0.05)
            gate.release.set()
            h.close()
            assert svc.drain(timeout=60)
            assert h.stats().windows_settled == 2
            assert h.result().accepted


class TestSettleRetry:
    def test_timeout_retries_then_quarantines(self):
        with CheckedStreamService() as svc:
            h = svc.register(
                "t",
                TenantConfig(
                    op="sum",
                    chunks_per_window=2,
                    settle_timeout=0.0,  # every attempt overruns
                    settle_retries=2,
                    retry_backoff=0.001,
                ),
            )
            other = svc.register("other", TenantConfig(op="sum"))
            for c in range(2):
                h.submit(sum_chunk(c))
                other.submit(sum_chunk(c))
            h.close()
            other.close()
            assert svc.drain(timeout=60)

            res = h.result()
            assert res.error is None  # quarantined, not crashed
            view = res.stats
            assert view.windows_settled == 1
            assert view.windows_quarantined == 1
            assert view.settle_retries == 2
            assert view.settle_failures == 1
            assert view.degraded
            assert len(res.quarantined) == 1
            assert res.verdicts[0].checker == "service-settle-failure"
            assert "budget" in res.verdicts[0].details["error"]
            # The daemon and its other tenants are unaffected.
            assert other.result().accepted

    def test_flaky_settle_retries_then_succeeds(self):
        svc = CheckedStreamService()
        h = svc.register(
            "t",
            TenantConfig(
                op="sum",
                chunks_per_window=2,
                settle_retries=2,
                retry_backoff=0.001,
            ),
        )
        tenant = svc._get("t")
        real_settle = tenant.engine.settle_window
        calls = {"n": 0}

        def flaky(comm, window, seed_w, chunks):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient settle hiccup")
            return real_settle(comm, window, seed_w, chunks)

        tenant.engine.settle_window = flaky
        chunks = [sum_chunk(c) for c in range(2)]
        for c in chunks:
            h.submit(c)
        h.close()
        assert svc.drain(timeout=60)
        res = h.result()
        assert res.accepted
        assert res.stats.settle_retries == 1
        assert res.stats.windows_quarantined == 0
        assert [int(o) for o in res.outputs] == [int(sum(np.sum(c) for c in chunks))]
        # Retried settle used a fresh derived seed, recorded in history.
        assert res.window_history[0].seed != window_seed(0, 0)
        svc.shutdown(timeout=10)

    def test_fatal_worker_error_contained(self):
        svc = CheckedStreamService()
        h = svc.register(
            "t", TenantConfig(op="sum", chunks_per_window=1, queue_capacity=2)
        )
        other = svc.register("other", TenantConfig(op="sum"))
        tenant = svc._get("t")

        def exploding_validate(chunk):
            raise MemoryError("engine blew up")

        tenant.engine.validate = exploding_validate
        h.submit(sum_chunk(0))
        # Producer keeps submitting after the worker died; the drain loop
        # must keep consuming so pause-mode producers never deadlock.
        for c in range(1, 6):
            h.submit(sum_chunk(c), timeout=10)
        other.submit(sum_chunk(9))
        h.close()
        other.close()
        assert svc.drain(timeout=60)
        res = h.result()
        assert res.error is not None and "MemoryError" in res.error
        assert res.stats.degraded
        assert other.result().accepted  # daemon survives
        svc.shutdown(timeout=10)


class TestStatsAccumulator:
    def test_concurrent_merge_hammer(self):
        """Cross-thread accounting is exact under the accumulator rule."""
        acc = StatsAccumulator()
        threads = 8
        per_thread = 500

        def hammer(tid):
            for i in range(per_thread):
                acc.add(
                    CheckedRunStats(
                        operation_seconds=1.0,
                        checker_seconds=2.0,
                        windows=1,
                        elements_fed=10,
                        repaired_windows=i % 2,
                    )
                )

        pool = [
            threading.Thread(target=hammer, args=(t,)) for t in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        total = acc.snapshot()
        assert total.windows == threads * per_thread
        assert total.elements_fed == threads * per_thread * 10
        assert total.operation_seconds == float(threads * per_thread)
        assert total.checker_seconds == float(2 * threads * per_thread)
        assert total.repaired_windows == threads * (per_thread // 2)


class TestDistributedIsolation:
    @pytest.mark.streaming
    def test_quarantined_tenant_never_stalls_healthy_tenant(self):
        """Two ranks, two tenants on private networks: one tenant's
        persistent fault (repair loop → quarantine) must not delay or
        corrupt the healthy tenant's windows on either rank."""
        p = 2
        grid = TenantCommGrid(p)
        services = [
            CheckedStreamService(comm_factory=grid.factory(r)) for r in range(p)
        ]
        rng = np.random.default_rng(77)
        victim_chunks = {
            r: [
                (
                    rng.integers(0, 40, 128).astype(np.uint64),
                    rng.integers(0, 1 << 20, 128).astype(np.int64),
                )
                for _ in range(4)
            ]
            for r in range(p)
        }
        healthy_chunks = {
            r: [sum_chunk(100 + 10 * r + c, 128) for c in range(4)]
            for r in range(p)
        }
        handles = {}
        for r, svc in enumerate(services):

            def persistent_fault(window, keys, values, _r=r):
                if _r == 0 and values.size:  # rank 0's op is broken for good
                    values = values.copy()
                    values[0] += 1
                return keys, values

            def reexec(window, ranges, _r=r):
                return list(victim_chunks[_r][2 * window : 2 * window + 2])

            handles[("victim", r)] = svc.register(
                "victim",
                TenantConfig(
                    op="reduce_by_key",
                    config=CONFIG,
                    seed=3,
                    chunks_per_window=2,
                    reexecute=reexec,
                    repair=RepairPolicy(max_attempts=2),
                    fault=persistent_fault,
                ),
            )
            handles[("healthy", r)] = svc.register(
                "healthy",
                TenantConfig(op="sum", config=CONFIG, seed=4,
                             chunks_per_window=2),
            )
        for c in range(4):
            for r in range(p):
                handles[("victim", r)].submit(victim_chunks[r][c])
                handles[("healthy", r)].submit(healthy_chunks[r][c])
        for key in handles:
            handles[key].close()
        t0 = time.perf_counter()
        for svc in services:
            assert svc.drain(timeout=120)
        elapsed = time.perf_counter() - t0

        for r in range(p):
            victim = handles[("victim", r)].result()
            assert victim.stats.windows_quarantined == 2
            assert victim.stats.degraded
            healthy = handles[("healthy", r)].result()
            assert healthy.accepted
            assert not healthy.stats.degraded
            expected = [
                int(
                    sum(
                        int(np.sum(healthy_chunks[rr][2 * w + i]))
                        for rr in range(p)
                        for i in range(2)
                    )
                )
                for w in range(2)
            ]
            assert [int(o) for o in healthy.outputs] == expected
        assert elapsed < 60.0
        for svc in services:
            svc.shutdown(timeout=10)
        grid.close()

    def test_settle_timeout_retries_in_lockstep_across_ranks(self):
        """Retry consensus: a settle-timeout on ONE rank makes every rank
        of the tenant retry together under the same derived seed.

        Rank 0 gets a tight ``settle_timeout`` and a transient slowdown in
        window 0; rank 1's budget is unbounded, so on its own it would
        never retry — the extra consensus allreduce is what forces it to.
        Before that allreduce existed, this configuration desynced the
        tenant's collectives (the docstring said to keep the timeout
        unbounded on distributed tenants)."""
        p = 2
        grid = TenantCommGrid(p)
        services = [
            CheckedStreamService(comm_factory=grid.factory(r)) for r in range(p)
        ]
        rng = np.random.default_rng(91)
        chunks = {
            r: [
                (
                    rng.integers(0, 30, 96).astype(np.uint64),
                    rng.integers(0, 1 << 16, 96).astype(np.int64),
                )
                for _ in range(4)
            ]
            for r in range(p)
        }
        slowed = {"done": False}

        def slow_once(window, keys, values):
            if window == 0 and not slowed["done"]:
                slowed["done"] = True
                time.sleep(0.2)
            return keys, values

        handles = {}
        for r, svc in enumerate(services):
            handles[r] = svc.register(
                "t",
                TenantConfig(
                    op="reduce_by_key",
                    config=CONFIG,
                    seed=5,
                    chunks_per_window=2,
                    settle_timeout=0.05 if r == 0 else None,
                    settle_retries=2,
                    retry_backoff=0.001,
                    fault=slow_once if r == 0 else None,
                ),
            )
        for c in range(4):
            for r in range(p):
                handles[r].submit(chunks[r][c])
        for r in range(p):
            handles[r].close()
        for svc in services:
            assert svc.drain(timeout=120)
        results = {r: handles[r].result() for r in range(p)}
        for r in range(p):
            assert results[r].accepted
            assert results[r].stats.windows_quarantined == 0
            # Both ranks retried exactly once — rank 1 only because the
            # consensus allreduce told it rank 0 timed out.
            assert results[r].stats.settle_retries == 1
        # The lockstep evidence: both ranks settled every window under
        # the same (retry-derived) seeds.  (Outputs are key-sharded per
        # rank, so they are disjoint by construction, not equal.)
        trails = [
            [
                (rec.window, int(rec.seed), tuple(int(s) for s in rec.seeds_used))
                for rec in results[r].window_history
            ]
            for r in range(p)
        ]
        assert trails[0] == trails[1]
        for svc in services:
            svc.shutdown(timeout=10)
        grid.close()

"""Heal-in-place repair wiring on the windowed sum and zip streams.

``reduce_by_key_checked`` repair is covered by ``test_dataflow_repair``;
these tests exercise the same loop on the other two windowed checkers,
through the ``fault=`` chaos seam: a hook that corrupts only a window's
first execution models a transient fault (repair must restore a
bit-identical output), a hook that corrupts every execution models a
persistently broken operation (repair must exhaust and quarantine).
"""

import numpy as np
import pytest

from repro.comm.context import Context
from repro.core.params import SumCheckConfig
from repro.dataflow.repair import RepairPolicy
from repro.dataflow.streaming import StreamingDIA

CONFIG = SumCheckConfig.parse("8x16 m15")


def value_chunks(seed, n_chunks=6, size=200):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 1 << 20, size).astype(np.int64)
        for _ in range(n_chunks)
    ]


class _TransientFault:
    """Corrupt only the first execution of one target window."""

    def __init__(self, target, persistent=False):
        self.target = target
        self.persistent = persistent
        self.calls = {}

    def hit(self, window):
        count = self.calls.get(window, 0)
        self.calls[window] = count + 1
        if window != self.target:
            return False
        return self.persistent or count == 0


class TestSumHeal:
    def test_transient_fault_heals_bit_identical(self):
        chunks = value_chunks(21)
        windows = [chunks[0:2], chunks[2:4], chunks[4:6]]
        fault = _TransientFault(target=1)

        def corrupt(window, values):
            if fault.hit(window):
                values = values.copy()
                values[0] += 7
            return values

        run = StreamingDIA.from_chunks(None, chunks).sum_checked(
            CONFIG,
            seed=5,
            chunks_per_window=2,
            reexecute=lambda w, ranges: list(windows[w]),
            fault=corrupt,
        )
        assert run.accepted
        assert not run.quarantined
        record = run.window_history[1]
        assert record.repaired and record.repair_attempts >= 1
        for w, total in enumerate(run.outputs):
            expected = sum(int(np.sum(c)) for c in windows[w])
            assert int(total) == expected  # healed output is bit-identical

    def test_persistent_fault_quarantines(self):
        chunks = value_chunks(23)
        windows = [chunks[0:2], chunks[2:4], chunks[4:6]]
        fault = _TransientFault(target=1, persistent=True)

        def corrupt(window, values):
            if fault.hit(window):
                values = values.copy()
                values[0] += 7
            return values

        run = StreamingDIA.from_chunks(None, chunks).sum_checked(
            CONFIG,
            seed=5,
            chunks_per_window=2,
            reexecute=lambda w, ranges: list(windows[w]),
            repair=RepairPolicy(max_attempts=2),
            fault=corrupt,
        )
        assert not run.accepted
        assert len(run.quarantined) == 1
        assert run.quarantined[0].window == 1
        record = run.window_history[1]
        assert record.quarantined and not record.repaired
        # Clean windows were untouched by the sick one.
        assert run.verdicts[0].accepted and run.verdicts[2].accepted

    @pytest.mark.parametrize("p", [2])
    def test_distributed_transient_heal(self, p):
        ctx = Context(p)
        per_rank = [value_chunks(31 + r, n_chunks=4, size=150) for r in range(p)]

        def job(comm, chunks):
            fault = _TransientFault(target=0)

            def corrupt(window, values):
                # Only rank 0's operation misbehaves; the collective
                # verdict still rejects on every PE.
                if comm.rank == 0 and fault.hit(window):
                    values = values.copy()
                    values[-1] += 3
                return values

            windows = [chunks[0:2], chunks[2:4]]
            run = StreamingDIA.from_chunks(comm, chunks).sum_checked(
                CONFIG,
                seed=9,
                chunks_per_window=2,
                reexecute=lambda w, ranges: list(windows[w]),
                fault=corrupt,
            )
            return run.accepted, run.outputs, run.window_history[0].repaired

        outs = ctx.run(job, per_rank_args=[(c,) for c in per_rank])
        assert all(o[0] for o in outs)
        assert all(o[2] for o in outs)  # window 0 healed on every PE
        expected = sum(
            int(np.sum(c)) for chunks in per_rank for c in chunks
        )
        for _, totals, _ in outs:
            assert sum(int(t) for t in totals) == expected


class TestZipHeal:
    def _streams(self, seed):
        rng = np.random.default_rng(seed)
        c1 = [rng.integers(0, 1 << 20, 120).astype(np.int64) for _ in range(4)]
        c2 = [rng.integers(0, 1 << 20, 120).astype(np.int64) for _ in range(4)]
        return c1, c2

    def test_transient_fault_heals_bit_identical(self):
        c1, c2 = self._streams(41)
        fault = _TransientFault(target=0)

        def corrupt(window, first, second):
            if fault.hit(window):
                first = first.copy()
                first[3] ^= 1
            return first, second

        run = StreamingDIA.from_chunks(None, c1).zip_checked(
            StreamingDIA.from_chunks(None, c2),
            seed=11,
            chunks_per_window=2,
            reexecute=lambda w, ranges: (
                c1[2 * w : 2 * w + 2],
                c2[2 * w : 2 * w + 2],
            ),
            fault=corrupt,
        )
        assert run.accepted
        assert run.window_history[0].repaired
        for w, (first, second) in enumerate(run.outputs):
            assert np.array_equal(
                first, np.concatenate(c1[2 * w : 2 * w + 2])
            )
            assert np.array_equal(
                second, np.concatenate(c2[2 * w : 2 * w + 2])
            )

    def test_persistent_fault_quarantines(self):
        c1, c2 = self._streams(43)
        fault = _TransientFault(target=1, persistent=True)

        def corrupt(window, first, second):
            if fault.hit(window):
                first = first.copy()
                first[0] += 1
            return first, second

        run = StreamingDIA.from_chunks(None, c1).zip_checked(
            StreamingDIA.from_chunks(None, c2),
            seed=11,
            chunks_per_window=2,
            reexecute=lambda w, ranges: (
                c1[2 * w : 2 * w + 2],
                c2[2 * w : 2 * w + 2],
            ),
            repair=RepairPolicy(max_attempts=2),
            fault=corrupt,
        )
        assert not run.accepted
        assert len(run.quarantined) == 1 and run.quarantined[0].window == 1
        assert run.verdicts[0].accepted

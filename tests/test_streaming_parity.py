"""Streaming parity suite: every CheckerStream == its batch checker.

The load-bearing property of the streaming refactor: for every
``CheckerStream`` implementation, single- and multi-seed, across chunk
sizes {1, 7, 64k} and duplicate-heavy / empty-chunk feeds, the settled
verdict (and every per-seed flag) is bit-identical to the batch checker
fed the concatenated input — and ``settle()`` raises on re-settle
uniformly across the whole protocol.

Select with ``pytest -m streaming``.
"""

import numpy as np
import pytest

from repro.comm.context import Context
from repro.core.average_checker import (
    check_average_aggregation,
    check_average_aggregation_multiseed,
)
from repro.core.groupby_checker import (
    check_groupby_redistribution,
    check_groupby_redistribution_multiseed,
    default_partitioner,
)
from repro.core.minmax_checker import (
    check_max_aggregation,
    check_min_aggregation,
    check_min_aggregation_multiseed,
)
from repro.core.multiseed import MultiSeedHashSumChecker, MultiSeedSumChecker
from repro.core.params import SumCheckConfig
from repro.core.permutation_checker import check_permutation_hashsum
from repro.core.streams import (
    AverageCheckerStream,
    CountCheckerStream,
    GroupByCheckerStream,
    MinMaxCheckerStream,
    MultiSeedSumCheckerStream,
    PermutationCheckerStream,
    StreamedKV,
    SumCheckerStream,
    ZipCheckerStream,
)
from repro.core.sum_checker import (
    SumAggregationChecker,
    check_count_aggregation,
    check_sum_aggregation,
)
from repro.core.zip_checker import check_zip
from repro.dataflow.ops.aggregates import average_by_key, min_by_key
from repro.workloads.kv import aggregate_reference, sum_workload

pytestmark = pytest.mark.streaming

# Weak configs make per-seed verdicts *vary* on a fault, so any bit-level
# divergence between the streaming and batch paths shows up in the
# per-seed flag lists, not just in the combined verdict.
WEAK = SumCheckConfig.parse("1x2 m4")
STRONG = SumCheckConfig.parse("8x16 m15")
SEEDS = np.arange(10, dtype=np.uint64) * np.uint64(911) + np.uint64(7)
SEED = 5
CHUNKS = (1, 7, 65536)
N = 240


def chunked(arr, size, with_empty=True):
    """Split an array into chunks, interleaving empties to stress feeds."""
    arr = np.asarray(arr)
    out = []
    for i in range(0, max(arr.shape[0], 1), size):
        if with_empty and (i // size) % 3 == 1:
            out.append(arr[:0])
        out.append(arr[i : i + size])
    out.append(arr[:0])
    return out


def chunked_pairs(columns, size, with_empty=True):
    """Chunk several aligned columns in lockstep (tuples per chunk)."""
    parts = [chunked(c, size, with_empty) for c in columns]
    return list(zip(*parts))


@pytest.fixture(scope="module")
def workload():
    # num_keys << N makes the feed duplicate-heavy (every key repeats).
    keys, values = sum_workload(N, num_keys=13, seed=21)
    out_k, out_v = aggregate_reference(keys, values)
    bad_v = out_v.copy()
    bad_v[1] += 3
    return keys, values, out_k, out_v, bad_v


@pytest.mark.parametrize("chunk", CHUNKS)
@pytest.mark.parametrize("operator", ["+", "xor"])
def test_sum_stream_parity(workload, chunk, operator):
    keys, values, out_k, out_v, bad_v = workload
    for asserted in (out_v, bad_v):
        batch = SumAggregationChecker(WEAK, SEED, operator).check_local(
            (keys, values), (out_k, asserted)
        )
        stream = SumCheckerStream(SumAggregationChecker(WEAK, SEED, operator))
        for k, v in chunked_pairs((keys, values), chunk):
            stream.feed_input(k, v)
        for k, v in chunked_pairs((out_k, asserted), chunk):
            stream.feed_output(k, v)
        assert stream.settle().accepted == batch.accepted


@pytest.mark.parametrize("chunk", CHUNKS)
@pytest.mark.parametrize("operator", ["+", "xor"])
def test_multiseed_sum_stream_parity(workload, chunk, operator):
    keys, values, out_k, out_v, bad_v = workload
    for asserted in (out_v, bad_v):
        checker = MultiSeedSumChecker(WEAK, SEEDS, operator)
        batch = checker.check_local((keys, values), (out_k, asserted))
        stream = MultiSeedSumCheckerStream(
            MultiSeedSumChecker(WEAK, SEEDS, operator)
        )
        for k, v in chunked_pairs((keys, values), chunk):
            stream.feed_input(k, v)
        for k, v in chunked_pairs((out_k, asserted), chunk):
            stream.feed_output(k, v)
        got = stream.settle()
        assert (
            got.details["per_seed_accepted"]
            == batch.details["per_seed_accepted"]
        )
        assert got.accepted == batch.accepted


@pytest.mark.parametrize("chunk", CHUNKS)
def test_count_stream_parity(workload, chunk):
    keys, _, out_k, _, _ = workload
    counts = aggregate_reference(keys, np.ones(keys.size, dtype=np.int64))[1]
    bad = counts.copy()
    bad[0] += 1
    for asserted, checker in (
        (counts, SumAggregationChecker(WEAK, SEED)),
        (bad, SumAggregationChecker(WEAK, SEED)),
        (counts, MultiSeedSumChecker(WEAK, SEEDS)),
        (bad, MultiSeedSumChecker(WEAK, SEEDS)),
    ):
        multi = isinstance(checker, MultiSeedSumChecker)
        if multi:
            batch = check_count_aggregation_multiseed_ref(
                keys, (out_k, asserted)
            )
        else:
            batch = check_count_aggregation(
                keys, (out_k, asserted), WEAK, seed=SEED
            )
        stream = CountCheckerStream(checker)
        for (k,) in chunked_pairs((keys,), chunk):
            stream.feed_input(k)
        for k, c in chunked_pairs((out_k, asserted), chunk):
            stream.feed_output(k, c)
        got = stream.settle()
        assert got.accepted == batch.accepted
        if multi:
            assert (
                got.details["per_seed_accepted"]
                == batch.details["per_seed_accepted"]
            )


def check_count_aggregation_multiseed_ref(keys, asserted_kv):
    from repro.core.multiseed import check_count_aggregation_multiseed

    return check_count_aggregation_multiseed(
        keys, asserted_kv, SEEDS, config=WEAK
    )


@pytest.mark.parametrize("chunk", CHUNKS)
@pytest.mark.parametrize("multi", [False, True])
def test_average_stream_parity(workload, chunk, multi):
    keys, values, *_ = workload
    avg = average_by_key(None, keys, values)
    bad_nums = avg.numerators.copy()
    bad_nums[2] += 1
    for nums in (avg.numerators, bad_nums):
        if multi:
            batch = check_average_aggregation_multiseed(
                (keys, values), avg.keys, nums, avg.denominators,
                avg.counts, SEEDS, config=WEAK,
            )
            stream = AverageCheckerStream(SEEDS, WEAK)
        else:
            batch = check_average_aggregation(
                (keys, values), avg.keys, nums, avg.denominators,
                avg.counts, config=WEAK, seed=SEED,
            )
            stream = AverageCheckerStream(SEED, WEAK)
        for k, v in chunked_pairs((keys, values), chunk):
            stream.feed_input(k, v)
        for k, n, d, c in chunked_pairs(
            (avg.keys, nums, avg.denominators, avg.counts), chunk
        ):
            stream.feed_output(k, n, d, c)
        got = stream.settle()
        assert got.accepted == batch.accepted
        if multi:
            assert (
                got.details["per_seed_accepted"]
                == batch.details["per_seed_accepted"]
            )


@pytest.mark.parametrize("chunk", CHUNKS)
def test_minmax_stream_parity(workload, chunk):
    keys, values, *_ = workload
    res = min_by_key(None, keys, values)
    bad_vals = res.values.copy()
    bad_vals[0] -= 1  # claims a minimum below every input element
    for asserted in (res.values, bad_vals):
        batch = check_min_aggregation(
            (keys, values), res.keys, asserted, res.owners, seed=SEED
        )
        stream = MinMaxCheckerStream(SEED, kind="min")
        stream.feed_output(res.keys, asserted, res.owners)
        for k, v in chunked_pairs((keys, values), chunk):
            stream.feed_input(k, v)
        assert stream.settle().accepted == batch.accepted

    # max via negation, multi-seed flags included
    from repro.dataflow.ops.aggregates import max_by_key

    mx = max_by_key(None, keys, values)
    batch = check_max_aggregation(
        (keys, values), mx.keys, mx.values, mx.owners, seed=SEED
    )
    stream = MinMaxCheckerStream(SEED, kind="max")
    stream.feed_output(mx.keys, mx.values, mx.owners)
    for k, v in chunked_pairs((keys, values), chunk):
        stream.feed_input(k, v)
    assert stream.settle().accepted == batch.accepted

    multi_batch = check_min_aggregation_multiseed(
        (keys, values), res.keys, res.values, res.owners, SEEDS
    )
    stream = MinMaxCheckerStream(SEEDS, kind="min")
    stream.feed_output(res.keys, res.values, res.owners)
    for k, v in chunked_pairs((keys, values), chunk):
        stream.feed_input(k, v)
    got = stream.settle()
    assert got.accepted == multi_batch.accepted
    assert (
        got.details["per_seed_accepted"]
        == multi_batch.details["per_seed_accepted"]
    )


def test_minmax_stream_requires_result_first():
    stream = MinMaxCheckerStream(SEED)
    with pytest.raises(RuntimeError, match="asserted result"):
        stream.feed_input([1], [1])
    stream.feed_output([1], [1], [0])
    with pytest.raises(RuntimeError, match="already fed"):
        stream.feed_output([1], [1], [0])


@pytest.mark.parametrize("chunk", CHUNKS)
@pytest.mark.parametrize("multi", [False, True])
def test_permutation_stream_parity(workload, chunk, multi):
    keys, *_ = workload
    rng = np.random.default_rng(3)
    e = keys
    o_good = rng.permutation(e)
    o_bad = o_good.copy()
    o_bad[4] += 1
    for o in (o_good, o_bad):
        # log_h=8 keeps single-iteration fingerprints weak enough that
        # per-seed verdicts differ on the fault.
        if multi:
            batch = MultiSeedHashSumChecker(SEEDS, 1, "Mix", 8).check(e, o)
            stream = PermutationCheckerStream(SEEDS, 1, "Mix", 8)
        else:
            batch = check_permutation_hashsum(
                e, o, iterations=1, log_h=8, seed=SEED
            )
            stream = PermutationCheckerStream(SEED, 1, "Mix", 8)
        for (c,) in chunked_pairs((e,), chunk):
            stream.feed_input(c)
        for (c,) in chunked_pairs((o,), chunk):
            stream.feed_output(c)
        got = stream.settle()
        assert got.accepted == batch.accepted
        if multi:
            assert (
                got.details["per_seed_accepted"]
                == batch.details["per_seed_accepted"]
            )


@pytest.mark.parametrize("chunk", CHUNKS)
@pytest.mark.parametrize("multi", [False, True])
def test_groupby_stream_parity(workload, chunk, multi):
    keys, values, *_ = workload
    part = default_partitioner(1)
    rng = np.random.default_rng(5)
    order = rng.permutation(keys.size)
    post_good = (keys[order], values[order])
    post_bad = (keys[order], values[order].copy())
    post_bad[1][3] += 1
    for post in (post_good, post_bad):
        if multi:
            batch = check_groupby_redistribution_multiseed(
                (keys, values), post, part, SEEDS, iterations=1, log_h=8
            )
            stream = GroupByCheckerStream(
                part, SEEDS, iterations=1, log_h=8
            )
        else:
            batch = check_groupby_redistribution(
                (keys, values), post, part, iterations=1, log_h=8, seed=SEED
            )
            stream = GroupByCheckerStream(part, SEED, iterations=1, log_h=8)
        for k, v in chunked_pairs((keys, values), chunk):
            stream.feed_input(k, v)
        for k, v in chunked_pairs(post, chunk):
            stream.feed_output(k, v)
        got = stream.settle()
        assert got.accepted == batch.accepted
        if multi:
            assert (
                got.details["per_seed_accepted"]
                == batch.details["per_seed_accepted"]
            )


@pytest.mark.parametrize("chunk", CHUNKS)
def test_zip_stream_parity(chunk):
    rng = np.random.default_rng(9)
    s1 = rng.integers(0, 1000, N).astype(np.uint64)
    s2 = rng.integers(0, 1000, N).astype(np.uint64)
    zf_bad = s1.copy()
    zf_bad[5] += 1
    for zf in (s1, zf_bad):
        batch = check_zip(s1, s2, zf, s2, iterations=2, seed=SEED)
        stream = ZipCheckerStream(SEED, iterations=2)
        for (c,) in chunked_pairs((s1,), chunk):
            stream.feed_input(first=c)
        for (c,) in chunked_pairs((s2,), chunk):
            stream.feed_input(second=c)
        for f, s in chunked_pairs((zf, s2), chunk):
            stream.feed_output(f, s)
        got = stream.settle()
        assert got.accepted == batch.accepted

        # Multi-seed flags == T independent check_zip calls.
        multi = ZipCheckerStream(SEEDS, iterations=2)
        multi.feed_input(first=s1, second=s2)
        multi.feed_output(zf, s2)
        per_seed = multi.settle().details["per_seed_accepted"]
        assert per_seed == [
            check_zip(s1, s2, zf, s2, iterations=2, seed=int(s)).accepted
            for s in SEEDS
        ]


def test_zip_stream_interleaved_chunks_match_batch():
    """Feeding sides at different rates is offset-exact."""
    s1 = np.arange(50, dtype=np.uint64)
    s2 = np.arange(50, 100, dtype=np.uint64)
    batch = check_zip(s1, s2, s1, s2, iterations=2, seed=3)
    stream = ZipCheckerStream(3, iterations=2)
    stream.feed_input(first=s1[:30])
    stream.feed_output(s1[:10], s2[:10])
    stream.feed_input(second=s2[:45])
    stream.feed_input(first=s1[30:], second=s2[45:])
    stream.feed_output(s1[10:], s2[10:])
    assert stream.settle().accepted == batch.accepted is True


def _all_streams():
    """One freshly constructible instance per stream family."""
    part = default_partitioner(1)
    return [
        ("sum", SumCheckerStream(SumAggregationChecker(STRONG, 1))),
        (
            "multiseed-sum",
            MultiSeedSumCheckerStream(MultiSeedSumChecker(STRONG, SEEDS)),
        ),
        ("count", CountCheckerStream(SumAggregationChecker(STRONG, 1))),
        ("average", AverageCheckerStream(1, STRONG)),
        ("minmax", MinMaxCheckerStream(1)),
        ("permutation", PermutationCheckerStream(1)),
        ("groupby", GroupByCheckerStream(part, 1)),
        ("zip", ZipCheckerStream(1)),
    ]


def test_settle_raises_on_resettle_uniformly():
    for name, stream in _all_streams():
        stream.settle()
        with pytest.raises(RuntimeError, match="already settled"):
            stream.settle()


def test_feed_after_settle_raises_uniformly():
    feeds = {
        "sum": lambda s: s.feed_input([1], [1]),
        "multiseed-sum": lambda s: s.feed_output([1], [1]),
        "count": lambda s: s.feed_input([1]),
        "average": lambda s: s.feed_input([1], [1]),
        "minmax": lambda s: s.feed_output([1], [1], [0]),
        "permutation": lambda s: s.feed_input([1]),
        "groupby": lambda s: s.feed_output([1], [1]),
        "zip": lambda s: s.feed_output([1], [1]),
    }
    for name, stream in _all_streams():
        stream.settle()
        with pytest.raises(RuntimeError, match="already settled"):
            feeds[name](stream)


def test_streamed_kv_overflow_promotes_and_stays_exact():
    """Per-key sums beyond int64 go exact-Python-int, verdicts still match."""
    keys = np.zeros(6, dtype=np.uint64)
    values = np.full(6, 1 << 61, dtype=np.int64)  # Σ = 3·2^62 > int64 max
    acc = StreamedKV()
    for i in range(6):
        acc.fold(keys[i : i + 1], values[i : i + 1])
    ek, ev = acc.pairs()
    assert ev.dtype == np.int64 and np.all(ek == 0)
    assert sum(int(v) for v in ev) == 6 * (1 << 61)

    # End-to-end: identical multisets accepted, a perturbed one matches
    # the batch checker's verdict on the same exploded representation.
    stream = SumCheckerStream(SumAggregationChecker(STRONG, 4))
    for i in range(6):
        stream.feed_input(keys[i : i + 1], values[i : i + 1])
    stream.feed_output(keys, values)
    assert stream.settle().accepted

    bad = values.copy()
    bad[0] += 1
    stream = SumCheckerStream(SumAggregationChecker(STRONG, 4))
    for i in range(6):
        stream.feed_input(keys[i : i + 1], values[i : i + 1])
    stream.feed_output(keys, bad)
    batch = SumAggregationChecker(STRONG, 4).check_local(
        (keys, values), (keys, bad)
    )
    assert stream.settle().accepted == batch.accepted


@pytest.mark.parametrize("p", [2, 4])
def test_distributed_stream_parity(p):
    """Distributed settles equal distributed batch checks, all PEs agree."""
    keys, values = sum_workload(2_000, num_keys=60, seed=31)
    out_k, out_v = aggregate_reference(keys, values)
    ctx = Context(p)

    def run(comm, k, v, ok, ov):
        batch = MultiSeedSumChecker(WEAK, SEEDS).check_distributed(
            comm, (k, v), (ok, ov)
        )
        stream = MultiSeedSumCheckerStream(MultiSeedSumChecker(WEAK, SEEDS))
        for i in range(0, k.size, 97):
            stream.feed_input(k[i : i + 97], v[i : i + 97])
        stream.feed_output(ok, ov)
        got = stream.settle(comm)
        return (
            got.details["per_seed_accepted"]
            == batch.details["per_seed_accepted"],
            got.accepted == batch.accepted,
        )

    outs = ctx.run(
        run,
        per_rank_args=list(
            zip(
                ctx.split(keys),
                ctx.split(values),
                ctx.split(out_k),
                ctx.split(out_v),
            )
        ),
    )
    assert outs == [(True, True)] * p

"""Tests for bit-manipulation helpers."""

import numpy as np
import pytest

from repro.util.bits import ceil_log2, is_power_of_two, mask, popcount64


class TestCeilLog2:
    def test_powers_of_two(self):
        for k in range(20):
            assert ceil_log2(1 << k) == k

    def test_between_powers(self):
        assert ceil_log2(3) == 2
        assert ceil_log2(5) == 3
        assert ceil_log2(9) == 4
        assert ceil_log2(1025) == 11

    def test_one(self):
        assert ceil_log2(1) == 0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ceil_log2(0)
        with pytest.raises(ValueError):
            ceil_log2(-4)


class TestIsPowerOfTwo:
    def test_powers(self):
        assert all(is_power_of_two(1 << k) for k in range(30))

    def test_non_powers(self):
        assert not any(is_power_of_two(x) for x in (0, 3, 5, 6, 7, 9, 100, -2))


class TestMask:
    def test_values(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(8) == 255
        assert mask(64) == 2**64 - 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestPopcount:
    def test_matches_python(self):
        xs = np.array(
            [0, 1, 0xFF, 0xFFFFFFFFFFFFFFFF, 0x5555555555555555, 12345678901234],
            dtype=np.uint64,
        )
        got = popcount64(xs)
        for x, g in zip(xs, got):
            assert int(g) == bin(int(x)).count("1")

    def test_random(self, rng):
        xs = rng.integers(0, 2**63, 200).astype(np.uint64)
        got = popcount64(xs)
        for x, g in zip(xs, got):
            assert int(g) == bin(int(x)).count("1")

"""Tests for the SplitMix64 seeding substrate."""

import numpy as np
import pytest

from repro.util.rng import (
    derive_seed,
    splitmix64,
    splitmix64_array,
    uniform_below,
)


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_distinct_inputs_distinct_outputs(self):
        outs = {splitmix64(i) for i in range(1000)}
        assert len(outs) == 1000

    def test_range(self):
        for x in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(x) < 2**64

    def test_vector_matches_scalar(self):
        xs = np.array([0, 1, 12345, 2**63, 2**64 - 1], dtype=np.uint64)
        vec = splitmix64_array(xs)
        for x, v in zip(xs, vec):
            assert splitmix64(int(x)) == int(v)

    def test_vector_does_not_mutate_input(self):
        xs = np.array([1, 2, 3], dtype=np.uint64)
        copy = xs.copy()
        splitmix64_array(xs)
        assert np.array_equal(xs, copy)

    def test_avalanche(self):
        """Flipping one input bit flips ~half the output bits on average."""
        flips = []
        for i in range(64):
            a = splitmix64(0x123456789ABCDEF)
            b = splitmix64(0x123456789ABCDEF ^ (1 << i))
            flips.append(bin(a ^ b).count("1"))
        mean = sum(flips) / len(flips)
        assert 24 < mean < 40


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_path_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a", 0) != derive_seed(1, "a", 1)
        assert derive_seed(1) != derive_seed(2)

    def test_mixed_labels(self):
        assert derive_seed(7, "x", 3, "y") != derive_seed(7, "x", 3, "z")

    def test_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")


class TestUniformBelow:
    def test_bounds(self):
        for bound in (1, 2, 3, 7, 100, 2**40):
            for s in range(20):
                assert 0 <= uniform_below(s, bound) < bound

    def test_bound_one(self):
        assert uniform_below(99, 1) == 0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            uniform_below(1, 0)
        with pytest.raises(ValueError):
            uniform_below(1, -5)

    def test_roughly_uniform(self):
        counts = [0] * 4
        for s in range(4000):
            counts[uniform_below(s, 4)] += 1
        for c in counts:
            assert 800 < c < 1200

    def test_deterministic(self):
        assert uniform_below(5, 1000) == uniform_below(5, 1000)


class TestDeriveSeedArray:
    def test_matches_scalar_over_roots(self):
        from repro.util.rng import derive_seed_array

        roots = np.array([0, 1, 12345, 2**63, 2**64 - 1], dtype=np.uint64)
        got = derive_seed_array(roots, "sum-checker", "modulus", 3)
        for r, g in zip(roots, got):
            assert derive_seed(int(r), "sum-checker", "modulus", 3) == int(g)

    def test_scalar_root_with_counter_array(self):
        from repro.util.rng import derive_seed_array

        counters = np.arange(16, dtype=np.uint64)
        got = derive_seed_array(7, "trial", counters)
        for t, g in zip(counters, got):
            assert derive_seed(7, "trial", int(t)) == int(g)


class TestUniformBelowArray:
    def test_matches_scalar(self):
        from repro.util.rng import uniform_below_array

        seeds = np.arange(200, dtype=np.uint64)
        for bound in (1, 2, 7, 1 << 15, 10**6, (1 << 32) + 1):
            got = uniform_below_array(seeds, bound)
            for s, g in zip(seeds, got):
                assert uniform_below(int(s), bound) == int(g), bound

    def test_rejects_nonpositive(self):
        from repro.util.rng import uniform_below_array

        with pytest.raises(ValueError):
            uniform_below_array(np.arange(3, dtype=np.uint64), 0)


class TestSplitMixStreams:
    def test_batch_matches_scalar_streams(self):
        from repro.util.rng import SplitMixStream, SplitMixStreamBatch

        seeds = np.array([derive_seed(5, "trial", t) for t in range(8)])
        batch = SplitMixStreamBatch(seeds)
        scalars = [SplitMixStream(int(s)) for s in seeds]
        # Full draws and masked draws interleaved: counters must track.
        full = batch.integers(1000)
        for st, v in zip(scalars, full):
            assert st.integers(1000) == int(v)
        idx = np.array([1, 4, 6])
        masked = batch.integers(33, index=idx)
        for i, v in zip(idx, masked):
            assert scalars[i].integers(33) == int(v)
        full2 = batch.integers(10**6)
        for st, v in zip(scalars, full2):
            assert st.integers(10**6) == int(v)

    def test_stream_draws_in_bounds(self):
        from repro.util.rng import SplitMixStream

        stream = SplitMixStream(99)
        draws = [stream.integers(10) for _ in range(500)]
        assert set(draws) <= set(range(10))
        assert len(set(draws)) == 10  # all residues appear in 500 draws

"""Tests for the SplitMix64 seeding substrate."""

import numpy as np
import pytest

from repro.util.rng import (
    derive_seed,
    splitmix64,
    splitmix64_array,
    uniform_below,
)


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_distinct_inputs_distinct_outputs(self):
        outs = {splitmix64(i) for i in range(1000)}
        assert len(outs) == 1000

    def test_range(self):
        for x in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(x) < 2**64

    def test_vector_matches_scalar(self):
        xs = np.array([0, 1, 12345, 2**63, 2**64 - 1], dtype=np.uint64)
        vec = splitmix64_array(xs)
        for x, v in zip(xs, vec):
            assert splitmix64(int(x)) == int(v)

    def test_vector_does_not_mutate_input(self):
        xs = np.array([1, 2, 3], dtype=np.uint64)
        copy = xs.copy()
        splitmix64_array(xs)
        assert np.array_equal(xs, copy)

    def test_avalanche(self):
        """Flipping one input bit flips ~half the output bits on average."""
        flips = []
        for i in range(64):
            a = splitmix64(0x123456789ABCDEF)
            b = splitmix64(0x123456789ABCDEF ^ (1 << i))
            flips.append(bin(a ^ b).count("1"))
        mean = sum(flips) / len(flips)
        assert 24 < mean < 40


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_path_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a", 0) != derive_seed(1, "a", 1)
        assert derive_seed(1) != derive_seed(2)

    def test_mixed_labels(self):
        assert derive_seed(7, "x", 3, "y") != derive_seed(7, "x", 3, "z")

    def test_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")


class TestUniformBelow:
    def test_bounds(self):
        for bound in (1, 2, 3, 7, 100, 2**40):
            for s in range(20):
                assert 0 <= uniform_below(s, bound) < bound

    def test_bound_one(self):
        assert uniform_below(99, 1) == 0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            uniform_below(1, 0)
        with pytest.raises(ValueError):
            uniform_below(1, -5)

    def test_roughly_uniform(self):
        counts = [0] * 4
        for s in range(4000):
            counts[uniform_below(s, 4)] += 1
        for c in counts:
            assert 800 < c < 1200

    def test_deterministic(self):
        assert uniform_below(5, 1000) == uniform_below(5, 1000)

"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.workloads.kv import aggregate_reference, sum_workload
from repro.workloads.uniform import uniform_integers
from repro.workloads.wordcount import synthetic_corpus, word_to_key
from repro.workloads.zipf import ZipfGenerator, zipf_keys


class TestZipf:
    def test_range(self):
        gen = ZipfGenerator(1000, seed=1)
        sample = gen.sample(10_000)
        assert sample.min() >= 0 and sample.max() < 1000

    def test_rank_frequency_law(self):
        """Empirical frequencies follow f(k) = 1/(k·H_N): rank 0 about twice
        rank 1, about three times rank 2."""
        gen = ZipfGenerator(10_000, seed=2)
        sample = gen.sample(200_000)
        counts = np.bincount(sample.astype(np.intp), minlength=4)
        assert counts[0] / counts[1] == pytest.approx(2.0, rel=0.15)
        assert counts[0] / counts[2] == pytest.approx(3.0, rel=0.2)

    def test_pmf_normalised_prefix(self):
        gen = ZipfGenerator(100, seed=0)
        total = sum(gen.pmf(r) for r in range(100))
        assert total == pytest.approx(1.0)
        assert gen.pmf(-1) == 0.0 and gen.pmf(100) == 0.0

    def test_deterministic(self):
        assert np.array_equal(zipf_keys(100, 50, seed=3), zipf_keys(100, 50, seed=3))

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0)
        with pytest.raises(ValueError):
            ZipfGenerator(10).sample(-1)


class TestUniform:
    def test_range(self):
        data = uniform_integers(10_000, universe=10**8, seed=1)
        assert data.min() >= 0 and data.max() < 10**8

    def test_deterministic(self):
        assert np.array_equal(
            uniform_integers(100, seed=5), uniform_integers(100, seed=5)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_integers(-1)
        with pytest.raises(ValueError):
            uniform_integers(1, universe=0)


class TestSumWorkload:
    def test_shapes_and_positivity(self):
        keys, values = sum_workload(1_000, num_keys=100, seed=0)
        assert keys.size == values.size == 1_000
        assert keys.max() < 100
        assert values.min() >= 1  # x ⊕ y != x requires nonzero values

    def test_reference_aggregation_matches_dict(self):
        keys, values = sum_workload(500, num_keys=30, seed=1)
        ref: dict[int, int] = {}
        for k, v in zip(keys.tolist(), values.tolist()):
            ref[k] = ref.get(k, 0) + v
        out_k, out_v = aggregate_reference(keys, values)
        assert dict(zip(out_k.tolist(), out_v.tolist())) == ref
        assert np.all(out_k[:-1] < out_k[1:])  # strictly ascending keys

    def test_reference_empty(self):
        k, v = aggregate_reference(
            np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64)
        )
        assert k.size == 0 and v.size == 0


class TestWordcount:
    def test_corpus_size_and_zipf_shape(self):
        corpus = synthetic_corpus(20_000, vocabulary=500, seed=1)
        assert len(corpus) == 20_000
        from collections import Counter

        counts = Counter(corpus)
        most = counts.most_common(3)
        assert most[0][1] > most[2][1]

    def test_word_to_key_deterministic_and_distinct(self):
        assert word_to_key("katale") == word_to_key("katale")
        words = set(synthetic_corpus(1_000, vocabulary=200, seed=2))
        keys = {word_to_key(w) for w in words}
        assert len(keys) == len(words)
